"""Tests for the evaluation engine, executors, backends, and telemetry."""

import io
import json
import time

import numpy as np
import pytest

from repro.core.engine import (
    EvaluationEngine,
    ParallelExecutor,
    SerialExecutor,
    StressmarkFitness,
    make_executor,
)
from repro.supervision import SupervisedExecutor
from repro.core.genome import GenomeSpace
from repro.core.platform import (
    Measurement,
    MeasurementPlatform,
    MeasurementStats,
    SimulatorBackend,
)
from repro.core.telemetry import (
    ConsoleObserver,
    EvaluationEvent,
    GenerationEvent,
    JsonlObserver,
    PhaseEvent,
    TelemetryCollector,
)
from repro.errors import ConfigurationError
from repro.isa.opcodes import default_table
from repro.pdn.elements import bulldozer_pdn
from repro.pdn.transient import VoltageTrace
from repro.power.trace import CurrentTrace
from repro.uarch.config import bulldozer_chip

TABLE = default_table()


def small_space(slots=4):
    return GenomeSpace(table=TABLE, slots=slots, replications=1,
                       lp_nops_min=0, lp_nops_max=16)


# Module-level so the process-pool executor can pickle them.
def counting_fitness(genome):
    return genome.subblock.count("mulpd") + 0.001 * genome.lp_nops


def sleepy_fitness(genome):
    time.sleep(0.05)
    return counting_fitness(genome)


def exploding_fitness(genome):
    raise ValueError("boom in worker")


def tiny_platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


# ----------------------------------------------------------------------
# Engine basics
# ----------------------------------------------------------------------
class TestEvaluationEngine:
    def genomes(self, n, seed=0):
        space = small_space()
        rng = np.random.default_rng(seed)
        return [space.random_genome(rng) for _ in range(n)]

    def test_evaluate_many_matches_direct_calls(self):
        engine = EvaluationEngine(counting_fitness)
        genomes = self.genomes(6)
        assert engine.evaluate_many(genomes) == [
            counting_fitness(g) for g in genomes
        ]

    def test_results_in_request_order_with_duplicates(self):
        engine = EvaluationEngine(counting_fitness)
        a, b = self.genomes(2)
        values = engine.evaluate_many([b, a, b, b])
        assert values == [counting_fitness(b), counting_fitness(a),
                          counting_fitness(b), counting_fitness(b)]
        assert engine.evaluations == 2
        assert engine.cache_hits == 2

    def test_cache_serves_repeat_batches(self):
        calls = []

        def spy(genome):
            calls.append(genome)
            return 1.0

        engine = EvaluationEngine(spy)
        genomes = self.genomes(4)
        engine.evaluate_many(genomes)
        engine.evaluate_many(genomes)
        assert len(calls) == 4
        assert engine.evaluations == 4
        assert engine.cache_hits == 4

    def test_observers_see_evaluations(self):
        observer = RecordingObserver()
        engine = EvaluationEngine(counting_fitness, observers=[observer])
        genomes = self.genomes(3)
        engine.evaluate_many(genomes)
        engine.evaluate(genomes[0])
        fresh = [e for e in observer.events if not e.cached]
        cached = [e for e in observer.events if e.cached]
        assert len(fresh) == 3
        assert len(cached) == 1
        assert all(isinstance(e, EvaluationEvent) for e in observer.events)
        assert all(e.backend == "serial" for e in observer.events)

    def test_parallel_requires_platform_factory(self):
        space = small_space()
        platform = tiny_platform()
        with pytest.raises(ConfigurationError):
            EvaluationEngine.for_stressmarks(
                platform, space, threads=4, executor=ParallelExecutor(2)
            )

    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        # Parallel evaluation is supervised: crashes respawn the pool,
        # and an optional hard deadline kills hung workers.
        assert isinstance(pool, SupervisedExecutor)
        assert pool.workers == 3
        assert pool.task_timeout_s is None
        pool.close()
        deadlined = make_executor(2, hard_timeout_s=30.0, max_pool_rebuilds=7)
        assert deadlined.task_timeout_s == 30.0
        assert deadlined.max_pool_rebuilds == 7
        deadlined.close()


class TestParallelExecutor:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(0)

    def test_parallel_and_serial_agree(self):
        space = small_space()
        rng = np.random.default_rng(7)
        genomes = [space.random_genome(rng) for _ in range(8)]
        serial = EvaluationEngine(counting_fitness).evaluate_many(genomes)
        with ParallelExecutor(2) as pool:
            parallel = EvaluationEngine(
                counting_fitness, executor=pool
            ).evaluate_many(genomes)
        assert parallel == serial

    def test_pool_overlaps_a_generation(self):
        """A 24-genome generation must beat serial on >= 2 workers."""
        space = small_space(slots=6)
        rng = np.random.default_rng(3)
        genomes = [space.random_genome(rng) for _ in range(24)]

        serial_engine = EvaluationEngine(sleepy_fitness)
        start = time.perf_counter()
        serial_values = serial_engine.evaluate_many(genomes)
        serial_wall = time.perf_counter() - start

        with ParallelExecutor(4) as pool:
            pool.map(counting_fitness, genomes[:1])  # warm the pool up front
            parallel_engine = EvaluationEngine(sleepy_fitness, executor=pool)
            start = time.perf_counter()
            parallel_values = parallel_engine.evaluate_many(genomes)
            parallel_wall = time.perf_counter() - start

        assert parallel_values == serial_values
        assert parallel_wall < serial_wall

    def test_failed_map_releases_the_pool(self):
        """A worker exception must not leak the process pool.

        The executor is reused across GA generations, so an evaluation
        error used to strand live worker processes until interpreter exit;
        now the pool is torn down on the way out and rebuilt lazily if the
        caller survives the exception.
        """
        space = small_space()
        rng = np.random.default_rng(5)
        genomes = [space.random_genome(rng) for _ in range(4)]
        pool = ParallelExecutor(2)
        try:
            with pytest.raises(ValueError):
                pool.map(exploding_fitness, genomes)
            assert pool._pool is None  # shut down, not leaked
            # And the executor recovers for the next batch.
            assert pool.map(counting_fitness, genomes) == [
                counting_fitness(g) for g in genomes
            ]
        finally:
            pool.close()


# ----------------------------------------------------------------------
# The stressmark pipeline fitness
# ----------------------------------------------------------------------
class TestStressmarkFitness:
    def test_needs_platform_or_factory(self):
        with pytest.raises(ConfigurationError):
            StressmarkFitness(small_space(), 4)

    def test_pipeline_produces_droop_fitness(self):
        platform = tiny_platform()
        space = small_space()
        fitness = StressmarkFitness(space, threads=4, platform=platform)
        genome = space.random_genome(np.random.default_rng(0))
        value = fitness(genome)
        assert value > 0
        assert platform.stats().measurements == 1

    def test_pickled_copy_rebuilds_from_factory(self):
        import pickle

        space = small_space()
        fitness = StressmarkFitness(
            space, threads=4,
            platform=tiny_platform(), platform_factory=tiny_platform,
        )
        clone = pickle.loads(pickle.dumps(fitness))
        assert clone._platform is None
        genome = space.random_genome(np.random.default_rng(0))
        assert clone(genome) == pytest.approx(fitness(genome))


class TestWorkerStatsMerge:
    """`--workers N` used to lose every per-worker measurement counter;
    the engine now ships each evaluation's stats delta back to the parent
    platform so `stats()` reports campaign-wide totals."""

    def test_parallel_run_merges_worker_counters(self):
        space = small_space()
        platform = tiny_platform()
        rng = np.random.default_rng(9)
        genomes = [space.random_genome(rng) for _ in range(4)]
        with ParallelExecutor(2) as pool:
            engine = EvaluationEngine.for_stressmarks(
                platform, space, threads=4, executor=pool,
                platform_factory=tiny_platform,
            )
            engine.evaluate_many(genomes)
        stats = platform.stats()
        assert stats.measurements == len(genomes)
        assert stats.module_runs > 0
        assert stats.sim_time_s > 0
        assert stats.pdn_time_s > 0

    def test_serial_run_does_not_double_count(self):
        # Serial fitness hits the live platform directly — absorbing the
        # deltas again would double every counter.
        space = small_space()
        platform = tiny_platform()
        rng = np.random.default_rng(9)
        genomes = [space.random_genome(rng) for _ in range(3)]
        engine = EvaluationEngine.for_stressmarks(platform, space, threads=4)
        engine.evaluate_many(genomes)
        assert platform.stats().measurements == len(genomes)


# ----------------------------------------------------------------------
# MeasurementBackend seam: a fake backend, no simulator underneath
# ----------------------------------------------------------------------
class FakeBackend:
    """A 'real silicon' stand-in: canned voltage traces, no simulator."""

    def __init__(self):
        self.chip = bulldozer_chip()
        self.programs = []

    def _measurement(self, supply):
        n = 64
        samples = np.full(n, supply)
        samples[n // 2] = supply - 0.042
        dt = self.chip.cycle_time_s
        return Measurement(
            voltage=VoltageTrace(samples, dt, vdd_nominal=supply),
            sensitivity=np.ones(n),
            current=CurrentTrace(np.full(n, 25.0), dt),
            period_cycles=n,
            supply_v=supply,
            iteration_cycles=float(n),
        )

    def measure_program(self, program, threads, *, module_phases=None,
                        supply_v=None, smt_phase_cycles=None):
        self.programs.append((program, threads))
        return self._measurement(self.chip.vdd if supply_v is None else supply_v)

    def measure_current(self, current, *, sensitivity=None, supply_v=None,
                        baseline_current_a=None):
        return self._measurement(self.chip.vdd if supply_v is None else supply_v)


class TestMeasurementBackendSeam:
    def test_platform_accepts_foreign_backend(self):
        backend = FakeBackend()
        platform = MeasurementPlatform(backend=backend)
        space = small_space()
        genome = space.random_genome(np.random.default_rng(1))
        engine = EvaluationEngine.for_stressmarks(
            platform, space, threads=4
        )
        assert engine.evaluate(genome) == pytest.approx(0.042)
        assert len(backend.programs) == 1

    def test_audit_layer_never_touches_simulator_internals(self):
        """The full AUDIT loop runs on a backend with no simulator at all."""
        from repro.core.audit import AuditConfig, AuditRunner
        from repro.core.ga import GaConfig

        platform = MeasurementPlatform(backend=FakeBackend())
        runner = AuditRunner(
            platform,
            config=AuditConfig(
                threads=4,
                ga=GaConfig(population_size=4, generations=2, seed=0),
            ),
        )
        result = runner.run()
        assert result.max_droop_v == pytest.approx(0.042)

    def test_simulator_internals_error_cleanly_on_foreign_backend(self):
        platform = MeasurementPlatform(backend=FakeBackend())
        with pytest.raises(ConfigurationError):
            platform.chip_sim
        with pytest.raises(ConfigurationError):
            platform.pdn

    def test_fallback_stats_count_measurements(self):
        platform = MeasurementPlatform(backend=FakeBackend())
        space = small_space()
        genome = space.random_genome(np.random.default_rng(1))
        EvaluationEngine.for_stressmarks(platform, space, threads=4).evaluate(genome)
        stats = platform.stats()
        assert isinstance(stats, MeasurementStats)
        assert stats.measurements == 1
        assert stats.module_runs == 0

    def test_backend_and_chip_pdn_are_mutually_exclusive(self):
        chip = bulldozer_chip()
        with pytest.raises(ConfigurationError):
            MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd),
                                backend=FakeBackend())
        with pytest.raises(ConfigurationError):
            MeasurementPlatform()


# ----------------------------------------------------------------------
# Platform caching + telemetry counters
# ----------------------------------------------------------------------
class TestPlatformTelemetry:
    def test_failure_sweep_reuses_module_traces(self):
        """A Table-I style supply sweep must not re-run the simulator."""
        from repro.core.resonance import probe_program

        platform = tiny_platform()
        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        supplies = [1.2, 1.1875, 1.175, 1.1625, 1.15]
        for supply in supplies:
            platform.measure_program(program, 4, supply_v=supply)
        stats = platform.stats()
        assert stats.measurements == len(supplies)
        # One module simulation total; the first measurement's other three
        # modules hit the module-trace cache, and every later supply point
        # reuses the whole activity profile without touching the simulator.
        assert stats.module_runs == 1
        assert stats.module_cache_hits == 3
        assert stats.profile_cache_hits == len(supplies) - 1
        assert stats.periodic_measurements == len(supplies)
        assert stats.sim_time_s > 0
        assert stats.pdn_time_s > 0

    def test_jitter_seed_changes_smt_measurement(self):
        from repro.core.resonance import probe_program

        chip = bulldozer_chip()
        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        droops = []
        for seed in (0xD17D7, 1234):
            platform = MeasurementPlatform(
                chip, bulldozer_pdn(vdd=chip.vdd), jitter_seed=seed
            )
            droops.append(platform.measure_program(program, 8).max_droop_v)
        assert droops[0] != droops[1]

    def test_default_jitter_seed_reproduces(self):
        from repro.core.resonance import probe_program

        chip = bulldozer_chip()
        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        a = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        b = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        assert (a.measure_program(program, 8).max_droop_v
                == b.measure_program(program, 8).max_droop_v)

    def test_thread_count_validated_at_the_platform(self):
        from repro.core.resonance import probe_program

        platform = tiny_platform()
        program = probe_program(TABLE, hp_count=4, lp_nops=4)
        with pytest.raises(ConfigurationError):
            platform.measure_program(program, 0)
        with pytest.raises(ConfigurationError):
            platform.measure_program(program, -3)
        limit = platform.chip.total_threads
        with pytest.raises(ConfigurationError):
            platform.measure_program(program, limit + 1)

    def test_simulator_backend_direct_use(self):
        chip = bulldozer_chip()
        backend = SimulatorBackend(chip, bulldozer_pdn(vdd=chip.vdd))
        from repro.core.resonance import probe_program

        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        m = backend.measure_program(program, 4)
        assert m.max_droop_v > 0
        assert backend.stats().measurements == 1


# ----------------------------------------------------------------------
# Observer sinks
# ----------------------------------------------------------------------
class TestObserverSinks:
    def events(self):
        return [
            EvaluationEvent(genome="g0", fitness=0.07, wall_s=0.1,
                            cached=False, backend="serial"),
            EvaluationEvent(genome="g0", fitness=0.07, wall_s=0.0,
                            cached=True, backend="serial"),
            GenerationEvent(generation=0, best_fitness=0.07, mean_fitness=0.05,
                            evaluations_so_far=12, batch_size=12, batch_new=12,
                            wall_s=1.5),
            PhaseEvent(name="resonance-sweep", wall_s=2.0, detail="16 probes"),
        ]

    def test_jsonl_observer_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlObserver(path) as sink:
            for event in self.events():
                sink.on_event(event)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == [
            "evaluation", "evaluation", "generation", "phase"
        ]
        assert lines[2]["batch_size"] == 12
        assert lines[3]["name"] == "resonance-sweep"

    def test_console_observer_writes_generations_and_phases(self):
        stream = io.StringIO()
        observer = ConsoleObserver(stream)
        for event in self.events():
            observer.on_event(event)
        out = stream.getvalue()
        assert "gen   0" in out
        assert "resonance-sweep" in out
        assert "eval" not in out  # quiet unless verbose

    def test_console_observer_verbose_includes_evaluations(self):
        stream = io.StringIO()
        observer = ConsoleObserver(stream, verbose=True)
        for event in self.events():
            observer.on_event(event)
        assert "[eval/serial]" in stream.getvalue()
        assert "[eval/cache]" in stream.getvalue()

    def test_collector_aggregates_and_renders(self):
        collector = TelemetryCollector()
        for event in self.events():
            collector.on_event(event)
        assert collector.evaluations == 1
        assert collector.cache_hits == 1
        assert collector.cache_hit_rate == pytest.approx(0.5)
        assert collector.generations == 1
        assert collector.phases["resonance-sweep"] == pytest.approx(2.0)
        table = collector.summary_table(MeasurementStats(
            measurements=5, module_runs=2, module_cache_hits=8,
            sim_time_s=1.0, pdn_time_s=0.5, periodic_measurements=5,
        ))
        assert "fitness cache hit rate" in table
        assert "module-trace hit rate" in table
        assert "80.0 %" in table
