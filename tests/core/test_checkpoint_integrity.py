"""Checkpoint durability: corruption, salvage, and disk-full tolerance.

Every scenario here must land in either a successful salvage (the last
verified generation, flagged ``salvaged=True``) or a structured
:class:`CheckpointError` — never an unhandled crash, and never silently
loading corrupt bytes.
"""

import errno
import json

import numpy as np
import pytest

from repro.core.audit import AuditConfig, AuditRunner
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.ga import GaConfig, GaSnapshot, GenerationStats
from repro.core.genome import StressmarkGenome
from repro.errors import CheckpointCorrupt, CheckpointError, ConfigurationError
from repro.experiments.setup import bulldozer_testbed
from repro.supervision.chaos import (
    bitflip_file,
    inject_write_failures,
    truncate_file,
)


def snapshot(generation=0, evaluations=10):
    rng = np.random.default_rng(3)
    rng.random(2)
    genomes = tuple(
        StressmarkGenome(subblock=("mulpd",) * 4, lp_nops=i) for i in range(4)
    )
    return GaSnapshot(
        generation=generation,
        population=genomes,
        rng_state=rng.bit_generator.state,
        best_genome=genomes[0],
        best_fitness=0.01 * (generation + 1),
        stale=0,
        history=(
            GenerationStats(generation=0, best_fitness=0.01,
                            mean_fitness=0.005, evaluations_so_far=10),
        ),
        evaluations=evaluations,
    )


def store_with_generations(tmp_path, generations=2):
    store = CampaignCheckpoint(tmp_path / "campaign")
    for generation in range(generations):
        store.save(snapshot(generation=generation,
                            evaluations=10 * (generation + 1)),
                   fitness_cache={}, cache_hits=0)
    return store


class TestSalvage:
    def test_truncated_state_salvages_previous_generation(self, tmp_path):
        store = store_with_generations(tmp_path)
        truncate_file(store.state_path, keep_fraction=0.4)
        state = store.load()
        assert state is not None
        assert state.salvaged
        assert state.ga.generation == 0
        assert state.salvage_reason

    def test_missing_state_with_rotated_snapshot_salvages(self, tmp_path):
        store = store_with_generations(tmp_path)
        store.state_path.unlink()
        state = store.load()
        assert state.salvaged
        assert state.ga.generation == 0
        assert "missing" in state.salvage_reason

    def test_bitflipped_state_fails_digest_and_salvages(self, tmp_path):
        """A single flipped bit may still parse as JSON — only the
        sha256 manifest check can catch it."""
        store = store_with_generations(tmp_path)
        bitflip_file(store.state_path, seed=5)
        state = store.load()
        assert state.salvaged
        assert state.ga.generation == 0

    def test_both_snapshots_corrupt_is_a_named_error(self, tmp_path):
        store = store_with_generations(tmp_path)
        truncate_file(store.state_path, keep_bytes=7)
        truncate_file(store.prev_state_path, keep_bytes=7)
        with pytest.raises(CheckpointCorrupt) as excinfo:
            store.load()
        assert str(store.state_path) in str(excinfo.value)

    def test_single_generation_corruption_is_not_salvageable(self, tmp_path):
        store = store_with_generations(tmp_path, generations=1)
        truncate_file(store.state_path, keep_bytes=7)
        with pytest.raises(CheckpointCorrupt):
            store.load()


class TestManifestAndJournal:
    def test_missing_manifest_disables_verification_only(self, tmp_path):
        """Pre-manifest checkpoint directories keep loading."""
        store = store_with_generations(tmp_path)
        store.manifest_path.unlink()
        state = store.load()
        assert not state.salvaged
        assert state.ga.generation == 1

    def test_corrupt_manifest_does_not_brick_a_healthy_state(self, tmp_path):
        store = store_with_generations(tmp_path)
        store.manifest_path.write_text("{ not json")
        state = store.load()
        assert state.ga.generation == 1

    def test_journal_records_digests(self, tmp_path):
        store = store_with_generations(tmp_path)
        entries, skipped = store.read_journal()
        assert skipped == 0
        assert [e["generation"] for e in entries] == [0, 1]
        assert all(len(e["sha256"]) == 64 for e in entries)

    def test_bitflipped_journal_line_is_skipped_not_fatal(self, tmp_path):
        store = store_with_generations(tmp_path)
        lines = store.journal_path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # torn first line
        store.journal_path.write_text("\n".join(lines) + "\n")
        entries, skipped = store.read_journal()
        assert skipped == 1
        assert [e["generation"] for e in entries] == [1]
        # Loading is unaffected: the journal is advisory.
        assert store.load().ga.generation == 1


class TestWriteFailureTolerance:
    def test_enospc_mid_save_keeps_previous_snapshot_loadable(self, tmp_path):
        store = store_with_generations(tmp_path, generations=1)
        with inject_write_failures(count=1, errno=errno.ENOSPC) as delivered:
            with pytest.raises(CheckpointError) as excinfo:
                store.save(snapshot(generation=1, evaluations=20),
                           fitness_cache={}, cache_hits=0)
        assert delivered[0] == 1
        assert "disk full or I/O failure" in str(excinfo.value)
        assert not isinstance(excinfo.value, ConfigurationError)
        # The generation-0 snapshot survived the failed save.
        state = store.load()
        assert state.ga.generation == 0

    def test_permission_errors_classify_as_configuration(self, tmp_path):
        store = store_with_generations(tmp_path, generations=1)
        with inject_write_failures(count=1, errno=errno.EACCES):
            with pytest.raises(ConfigurationError):
                store.save(snapshot(generation=1), fitness_cache={},
                           cache_hits=0)


class TestEndToEndTruncatedResume:
    CONFIG = AuditConfig(
        threads=2,
        ga=GaConfig(population_size=6, generations=3, seed=1),
    )

    def test_resume_after_truncation_is_bit_identical(self, tmp_path):
        """The acceptance criterion: truncate the latest checkpoint of a
        finished campaign, resume, and reproduce the uncorrupted
        campaign's result exactly."""
        control = AuditRunner(bulldozer_testbed(), config=self.CONFIG).run()

        store = CampaignCheckpoint(tmp_path / "campaign")
        AuditRunner(bulldozer_testbed(), config=self.CONFIG).run(
            checkpoint=store
        )
        truncate_file(store.state_path, keep_fraction=0.5)

        banked = store.load()
        assert banked.salvaged

        resumed = AuditRunner(bulldozer_testbed(), config=self.CONFIG).run(
            checkpoint=store, resume=True
        )
        assert resumed.genome == control.genome
        assert resumed.max_droop_v == control.max_droop_v
        assert resumed.ga_result.best_fitness == control.ga_result.best_fitness
        assert resumed.ga_result.history == control.ga_result.history
        assert resumed.ga_result.evaluations == control.ga_result.evaluations
