"""Tests for the dithering algorithm (paper Section III.B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dithering import (
    alignment_sweep_cycles,
    alignment_sweep_seconds,
    dither_schedules,
    droop_for_alignment,
    visited_alignments,
    worst_case_alignment,
)
from repro.errors import SearchError


class TestSweepCost:
    def test_exact_cost_formula(self):
        # M * (L+H)^(C-1)
        assert alignment_sweep_cycles(cores=4, period_cycles=24, m_cycles=960) \
            == 960 * 24 ** 3

    def test_paper_example_four_cores(self):
        """Paper: 4 GHz, L+H=24, M=960 -> 3.3 ms for four cores."""
        seconds = alignment_sweep_seconds(
            cores=4, period_cycles=24, m_cycles=960, frequency_hz=4e9
        )
        assert seconds == pytest.approx(3.3e-3, rel=0.01)

    def test_paper_example_eight_cores(self):
        """Paper: the same sweep for eight cores takes 18.35 minutes."""
        seconds = alignment_sweep_seconds(
            cores=8, period_cycles=24, m_cycles=960, frequency_hz=4e9
        )
        assert seconds / 60 == pytest.approx(18.35, rel=0.01)

    def test_paper_example_approximate_eight_cores(self):
        """Paper: delta=3 shrinks the 8-core sweep from 18.35 min to 67 ms."""
        seconds = alignment_sweep_seconds(
            cores=8, period_cycles=24, m_cycles=960, frequency_hz=4e9, delta=3
        )
        assert seconds == pytest.approx(67e-3, rel=0.05)

    def test_delta_must_divide_period(self):
        with pytest.raises(SearchError):
            alignment_sweep_cycles(cores=4, period_cycles=25, m_cycles=10, delta=3)

    def test_single_core_needs_only_m_cycles(self):
        assert alignment_sweep_cycles(cores=1, period_cycles=24, m_cycles=960) == 960

    def test_validation(self):
        with pytest.raises(SearchError):
            alignment_sweep_cycles(cores=0, period_cycles=24, m_cycles=1)
        with pytest.raises(SearchError):
            alignment_sweep_seconds(cores=2, period_cycles=24, m_cycles=1,
                                    frequency_hz=0)


class TestDitherSchedules:
    def test_reference_core_never_pads(self):
        schedules = dither_schedules(cores=4, period_cycles=24, m_cycles=96)
        assert schedules[0].pad_cycles == 0
        assert schedules[0].interval_cycles == 0
        assert schedules[0].phase_at(10_000, 24) == 0

    def test_exact_padding_intervals(self):
        # Core c pads 1 cycle every M*(L+H)^(c-1) cycles.
        schedules = dither_schedules(cores=3, period_cycles=24, m_cycles=96)
        assert schedules[1].interval_cycles == 96
        assert schedules[2].interval_cycles == 96 * 24
        assert all(s.pad_cycles == 1 for s in schedules[1:])

    def test_approximate_padding(self):
        schedules = dither_schedules(cores=3, period_cycles=24, m_cycles=96, delta=3)
        assert schedules[1].pad_cycles == 4
        assert schedules[1].interval_cycles == 96
        assert schedules[2].interval_cycles == 96 * 6  # k = 24/4

    def test_exact_schedule_visits_every_alignment(self):
        """The core guarantee: the sweep traverses the whole space."""
        period, m = 6, 12
        schedules = dither_schedules(cores=3, period_cycles=period, m_cycles=m)
        total = alignment_sweep_cycles(cores=3, period_cycles=period, m_cycles=m)
        seen = visited_alignments(
            schedules, period_cycles=period, total_cycles=total, sample_every=m
        )
        assert len(seen) == period ** 2  # all (x1, x2) combinations

    def test_approximate_schedule_visits_quantised_grid(self):
        period, m, delta = 8, 16, 1
        schedules = dither_schedules(cores=2, period_cycles=period,
                                     m_cycles=m, delta=delta)
        total = alignment_sweep_cycles(cores=2, period_cycles=period,
                                       m_cycles=m, delta=delta)
        seen = visited_alignments(
            schedules, period_cycles=period, total_cycles=total, sample_every=m
        )
        assert seen == {(0,), (2,), (4,), (6,)}


class TestAlignmentDroop:
    def _response(self, period=32, depth=0.05, vdd=1.2):
        # A sinusoid-ish periodic voltage response with a single trough.
        t = np.arange(period)
        return vdd - depth * np.cos(2 * np.pi * t / period)

    def test_aligned_droop_is_sum_of_depths(self):
        response = self._response()
        droop = droop_for_alignment(response, (0, 0, 0), vdd=1.2)
        assert droop == pytest.approx(4 * 0.05, rel=1e-6)

    def test_antiphase_cancels(self):
        response = self._response()
        droop = droop_for_alignment(response, (16,), vdd=1.2)
        assert droop == pytest.approx(0.0, abs=1e-9)

    def test_worst_case_alignment_is_aligned_for_identical_waveforms(self):
        """min-of-sum >= sum-of-mins: alignment is provably worst."""
        response = self._response(period=16)
        offsets, droop = worst_case_alignment(response, cores=3, vdd=1.2)
        aligned = droop_for_alignment(response, (0, 0), vdd=1.2)
        assert droop == pytest.approx(aligned, rel=1e-9)
        # The trough of this response is at t=0, so offsets 0 are worst.
        assert offsets == (0, 0)

    @given(seed=st.integers(0, 10_000), cores=st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_exhaustive_sweep_never_beats_alignment_bound(self, seed, cores):
        rng = np.random.default_rng(seed)
        response = 1.2 + rng.normal(0, 0.02, size=12)
        _offsets, worst = worst_case_alignment(response, cores=cores, vdd=1.2)
        bound = cores * max(0.0, -(response - 1.2).min())
        assert worst <= bound + 1e-12

    def test_approximate_sweep_on_quantised_grid(self):
        response = self._response(period=16)
        offsets, _droop = worst_case_alignment(response, cores=2, vdd=1.2, delta=3)
        assert offsets[0] % 4 == 0


class TestDitheringEdgeCases:
    """Boundary conditions: exact mode, a single core, period wrap-around."""

    def _response(self, period=16, depth=0.05, vdd=1.2):
        t = np.arange(period)
        return vdd - depth * np.cos(2 * np.pi * t / period)

    # -- delta = 0 is the exact algorithm, explicitly -------------------
    def test_delta_zero_is_the_default_exact_mode(self):
        exact = dither_schedules(cores=3, period_cycles=24, m_cycles=96)
        explicit = dither_schedules(cores=3, period_cycles=24, m_cycles=96,
                                    delta=0)
        assert exact == explicit
        assert alignment_sweep_cycles(
            cores=3, period_cycles=24, m_cycles=96, delta=0
        ) == alignment_sweep_cycles(cores=3, period_cycles=24, m_cycles=96)

    def test_delta_zero_divides_any_period(self):
        # The (L+H) % (delta+1) constraint is vacuous in exact mode: odd
        # and prime periods are fine.
        for period in (7, 13, 25):
            schedules = dither_schedules(cores=2, period_cycles=period,
                                         m_cycles=4, delta=0)
            assert schedules[1].pad_cycles == 1

    def test_delta_zero_sweep_is_exhaustive_for_two_cores(self):
        period, m = 5, 10
        schedules = dither_schedules(cores=2, period_cycles=period,
                                     m_cycles=m, delta=0)
        total = alignment_sweep_cycles(cores=2, period_cycles=period,
                                       m_cycles=m, delta=0)
        seen = visited_alignments(
            schedules, period_cycles=period, total_cycles=total,
            sample_every=m,
        )
        assert seen == {(x,) for x in range(period)}

    # -- a single core has no alignment space ---------------------------
    def test_single_core_schedule_is_reference_only(self):
        schedules = dither_schedules(cores=1, period_cycles=24, m_cycles=96)
        assert len(schedules) == 1
        assert schedules[0].pad_cycles == 0

    def test_single_core_visits_the_empty_alignment(self):
        schedules = dither_schedules(cores=1, period_cycles=24, m_cycles=96)
        seen = visited_alignments(
            schedules, period_cycles=24, total_cycles=96, sample_every=24
        )
        assert seen == {()}

    def test_single_core_worst_case_is_its_own_droop(self):
        response = self._response()
        offsets, droop = worst_case_alignment(response, cores=1, vdd=1.2)
        assert offsets == ()
        assert droop == pytest.approx(
            droop_for_alignment(response, (), vdd=1.2))
        assert droop == pytest.approx(0.05, rel=1e-6)

    # -- offsets at the period boundary wrap around ---------------------
    def test_phase_wraps_at_the_period_boundary(self):
        schedule = dither_schedules(cores=2, period_cycles=8, m_cycles=4)[1]
        # After exactly 8 pads the core is back in phase with core 0.
        assert schedule.phase_at(8 * schedule.interval_cycles, 8) == 0
        assert schedule.phase_at(9 * schedule.interval_cycles, 8) == 1

    def test_full_period_offset_equals_aligned(self):
        response = self._response(period=16)
        aligned = droop_for_alignment(response, (0,), vdd=1.2)
        wrapped = droop_for_alignment(response, (16,), vdd=1.2)
        assert wrapped == pytest.approx(aligned, rel=1e-12)

    def test_offset_period_minus_one_differs_from_aligned(self):
        response = self._response(period=16)
        aligned = droop_for_alignment(response, (0,), vdd=1.2)
        boundary = droop_for_alignment(response, (15,), vdd=1.2)
        assert boundary < aligned

    def test_worst_case_offsets_stay_inside_the_period(self):
        response = self._response(period=8)
        offsets, _droop = worst_case_alignment(response, cores=3, vdd=1.2)
        assert all(0 <= x < 8 for x in offsets)
