"""Tests for the dithering algorithm (paper Section III.B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dithering import (
    alignment_sweep_cycles,
    alignment_sweep_seconds,
    dither_schedules,
    droop_for_alignment,
    visited_alignments,
    worst_case_alignment,
)
from repro.errors import SearchError


class TestSweepCost:
    def test_exact_cost_formula(self):
        # M * (L+H)^(C-1)
        assert alignment_sweep_cycles(cores=4, period_cycles=24, m_cycles=960) \
            == 960 * 24 ** 3

    def test_paper_example_four_cores(self):
        """Paper: 4 GHz, L+H=24, M=960 -> 3.3 ms for four cores."""
        seconds = alignment_sweep_seconds(
            cores=4, period_cycles=24, m_cycles=960, frequency_hz=4e9
        )
        assert seconds == pytest.approx(3.3e-3, rel=0.01)

    def test_paper_example_eight_cores(self):
        """Paper: the same sweep for eight cores takes 18.35 minutes."""
        seconds = alignment_sweep_seconds(
            cores=8, period_cycles=24, m_cycles=960, frequency_hz=4e9
        )
        assert seconds / 60 == pytest.approx(18.35, rel=0.01)

    def test_paper_example_approximate_eight_cores(self):
        """Paper: delta=3 shrinks the 8-core sweep from 18.35 min to 67 ms."""
        seconds = alignment_sweep_seconds(
            cores=8, period_cycles=24, m_cycles=960, frequency_hz=4e9, delta=3
        )
        assert seconds == pytest.approx(67e-3, rel=0.05)

    def test_delta_must_divide_period(self):
        with pytest.raises(SearchError):
            alignment_sweep_cycles(cores=4, period_cycles=25, m_cycles=10, delta=3)

    def test_single_core_needs_only_m_cycles(self):
        assert alignment_sweep_cycles(cores=1, period_cycles=24, m_cycles=960) == 960

    def test_validation(self):
        with pytest.raises(SearchError):
            alignment_sweep_cycles(cores=0, period_cycles=24, m_cycles=1)
        with pytest.raises(SearchError):
            alignment_sweep_seconds(cores=2, period_cycles=24, m_cycles=1,
                                    frequency_hz=0)


class TestDitherSchedules:
    def test_reference_core_never_pads(self):
        schedules = dither_schedules(cores=4, period_cycles=24, m_cycles=96)
        assert schedules[0].pad_cycles == 0
        assert schedules[0].interval_cycles == 0
        assert schedules[0].phase_at(10_000, 24) == 0

    def test_exact_padding_intervals(self):
        # Core c pads 1 cycle every M*(L+H)^(c-1) cycles.
        schedules = dither_schedules(cores=3, period_cycles=24, m_cycles=96)
        assert schedules[1].interval_cycles == 96
        assert schedules[2].interval_cycles == 96 * 24
        assert all(s.pad_cycles == 1 for s in schedules[1:])

    def test_approximate_padding(self):
        schedules = dither_schedules(cores=3, period_cycles=24, m_cycles=96, delta=3)
        assert schedules[1].pad_cycles == 4
        assert schedules[1].interval_cycles == 96
        assert schedules[2].interval_cycles == 96 * 6  # k = 24/4

    def test_exact_schedule_visits_every_alignment(self):
        """The core guarantee: the sweep traverses the whole space."""
        period, m = 6, 12
        schedules = dither_schedules(cores=3, period_cycles=period, m_cycles=m)
        total = alignment_sweep_cycles(cores=3, period_cycles=period, m_cycles=m)
        seen = visited_alignments(
            schedules, period_cycles=period, total_cycles=total, sample_every=m
        )
        assert len(seen) == period ** 2  # all (x1, x2) combinations

    def test_approximate_schedule_visits_quantised_grid(self):
        period, m, delta = 8, 16, 1
        schedules = dither_schedules(cores=2, period_cycles=period,
                                     m_cycles=m, delta=delta)
        total = alignment_sweep_cycles(cores=2, period_cycles=period,
                                       m_cycles=m, delta=delta)
        seen = visited_alignments(
            schedules, period_cycles=period, total_cycles=total, sample_every=m
        )
        assert seen == {(0,), (2,), (4,), (6,)}


class TestAlignmentDroop:
    def _response(self, period=32, depth=0.05, vdd=1.2):
        # A sinusoid-ish periodic voltage response with a single trough.
        t = np.arange(period)
        return vdd - depth * np.cos(2 * np.pi * t / period)

    def test_aligned_droop_is_sum_of_depths(self):
        response = self._response()
        droop = droop_for_alignment(response, (0, 0, 0), vdd=1.2)
        assert droop == pytest.approx(4 * 0.05, rel=1e-6)

    def test_antiphase_cancels(self):
        response = self._response()
        droop = droop_for_alignment(response, (16,), vdd=1.2)
        assert droop == pytest.approx(0.0, abs=1e-9)

    def test_worst_case_alignment_is_aligned_for_identical_waveforms(self):
        """min-of-sum >= sum-of-mins: alignment is provably worst."""
        response = self._response(period=16)
        offsets, droop = worst_case_alignment(response, cores=3, vdd=1.2)
        aligned = droop_for_alignment(response, (0, 0), vdd=1.2)
        assert droop == pytest.approx(aligned, rel=1e-9)
        # The trough of this response is at t=0, so offsets 0 are worst.
        assert offsets == (0, 0)

    @given(seed=st.integers(0, 10_000), cores=st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_exhaustive_sweep_never_beats_alignment_bound(self, seed, cores):
        rng = np.random.default_rng(seed)
        response = 1.2 + rng.normal(0, 0.02, size=12)
        _offsets, worst = worst_case_alignment(response, cores=cores, vdd=1.2)
        bound = cores * max(0.0, -(response - 1.2).min())
        assert worst <= bound + 1e-12

    def test_approximate_sweep_on_quantised_grid(self):
        response = self._response(period=16)
        offsets, _droop = worst_case_alignment(response, cores=2, vdd=1.2, delta=3)
        assert offsets[0] % 4 == 0
