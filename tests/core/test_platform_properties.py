"""Property and integration tests for the measurement platform.

Physical invariants that must hold regardless of program: determinism,
monotonic responses, load-line effects, energy conservation between the
periodic and transient measurement paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import MeasurementPlatform
from repro.core.resonance import probe_program
from repro.isa.opcodes import default_table
from repro.pdn.elements import bulldozer_pdn
from repro.uarch.config import bulldozer_chip

TABLE = default_table()


def fresh_platform(**kw):
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd), **kw)


@pytest.fixture(scope="module")
def platform():
    return fresh_platform()


@pytest.fixture(scope="module")
def program():
    return probe_program(TABLE, hp_count=32, lp_nops=95)


class TestDeterminism:
    def test_fresh_platforms_agree_exactly(self, program):
        a = fresh_platform().measure_program(program, 4)
        b = fresh_platform().measure_program(program, 4)
        np.testing.assert_array_equal(a.voltage.samples, b.voltage.samples)
        np.testing.assert_array_equal(a.sensitivity, b.sensitivity)

    def test_jittered_smt_path_is_deterministic(self, program):
        a = fresh_platform().measure_program(program, 8)
        b = fresh_platform().measure_program(program, 8)
        np.testing.assert_array_equal(a.voltage.samples, b.voltage.samples)


class TestMonotonicity:
    @given(supplies=st.lists(
        st.floats(0.9, 1.2).map(lambda v: round(v, 3)),
        min_size=2, max_size=4, unique=True,
    ))
    @settings(max_examples=10, deadline=None)
    def test_lower_supply_never_shrinks_droop(self, supplies, program):
        platform = fresh_platform()
        supplies = sorted(supplies, reverse=True)
        droops = [
            platform.measure_program(program, 4, supply_v=v).max_droop_v
            for v in supplies
        ]
        assert droops == sorted(droops)

    def test_more_modules_more_droop(self, platform, program):
        droops = [platform.measure_program(program, t).max_droop_v
                  for t in (1, 2, 3, 4)]
        assert droops == sorted(droops)
        assert droops[-1] > droops[0]


class TestPhaseInvariants:
    def test_global_phase_shift_is_irrelevant(self, platform, program):
        """Shifting every module identically cannot change the droop."""
        base = platform.measure_program(program, 4).max_droop_v
        period = platform.measure_program(program, 4).period_cycles
        shifted = platform.measure_program(
            program, 4, module_phases=[7, 7, 7, 7]
        ).max_droop_v
        assert shifted == pytest.approx(base, rel=1e-9)
        assert period is not None

    @given(offset=st.integers(1, 31))
    @settings(max_examples=12, deadline=None)
    def test_any_misalignment_weakens_or_equals_aligned(self, offset, program):
        platform = fresh_platform()
        aligned = platform.measure_program(program, 4).max_droop_v
        staggered = platform.measure_program(
            program, 4, module_phases=[0, offset, 0, offset]
        ).max_droop_v
        assert staggered <= aligned + 1e-12


class TestLoadLine:
    def test_load_line_adds_dc_sag(self, program):
        chip = bulldozer_chip()
        base = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        with_ll = MeasurementPlatform(
            chip, bulldozer_pdn(vdd=chip.vdd).with_load_line(1e-3)
        )
        d_base = base.measure_program(program, 4)
        d_ll = with_ll.measure_program(program, 4)
        # The paper disables the load line to isolate di/dt droops; with it
        # enabled the same program shows a deeper total droop.
        assert d_ll.max_droop_v > d_base.max_droop_v
        extra = d_ll.max_droop_v - d_base.max_droop_v
        expected_dc = 1e-3 * d_base.mean_current_a
        assert extra == pytest.approx(expected_dc, rel=0.5)


class TestPathConsistency:
    def test_periodic_and_transient_paths_agree(self, platform):
        """The fast periodic path must match a brute-force transient."""
        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        fast = platform.measure_program(program, 4)
        assert fast.period_cycles is not None

        # Brute force: tile the measured periodic current and simulate.
        tiled = fast.current.tile(400)
        solver = platform.solver_at(platform.chip.vdd)
        slow = solver.simulate(tiled, baseline_current_a=fast.current.mean_a)
        late_min = slow.samples[len(slow.samples) // 2 :].min()
        assert fast.voltage.min_v == pytest.approx(late_min, abs=2e-3)

    def test_sensitivity_only_during_activity(self, platform):
        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        m = platform.measure_program(program, 4)
        active = m.sensitivity > 0
        # The LP region must contain sensitivity-free cycles.
        assert (~active).sum() > 0
        assert active.sum() > 0

    def test_mean_power_scales_with_threads(self, platform, program):
        p1 = platform.measure_program(program, 1).mean_power_w
        p4 = platform.measure_program(program, 4).mean_power_w
        assert p4 > p1
        # Dynamic power roughly quadruples on top of a shared idle floor.
        assert p4 < 4.5 * p1
