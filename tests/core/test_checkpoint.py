"""Tests for the campaign checkpoint store and RNG round-tripping."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CampaignCheckpoint,
    atomic_write_json,
    decode_stressmark_genome,
    encode_stressmark_genome,
    rng_from_state,
    rng_state_to_jsonable,
)
from repro.core.ga import GaSnapshot, GenerationStats
from repro.core.genome import StressmarkGenome
from repro.errors import CheckpointError


# ----------------------------------------------------------------------
# RNG state round-tripping (property tests)
# ----------------------------------------------------------------------
class TestRngRoundTrip:
    @given(seed=st.integers(0, 2**63 - 1), warmup=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_save_load_draw_equals_uninterrupted_draw(self, seed, warmup):
        """The checkpoint contract: resuming the stream is invisible."""
        rng = np.random.default_rng(seed)
        rng.random(warmup)  # advance to an arbitrary point
        state = rng_state_to_jsonable(rng)

        control = np.random.default_rng(seed)
        control.random(warmup)

        resumed = rng_from_state(state)
        assert np.array_equal(resumed.random(64), control.random(64))
        assert np.array_equal(
            resumed.integers(0, 1 << 30, size=64),
            control.integers(0, 1 << 30, size=64),
        )
        assert np.array_equal(
            resumed.standard_normal(17), control.standard_normal(17)
        )

    @given(seed=st.integers(0, 2**63 - 1))
    @settings(max_examples=30, deadline=None)
    def test_state_survives_json(self, seed):
        """The jsonable state must actually be JSON, bit-exactly."""
        rng = np.random.default_rng(seed)
        rng.integers(0, 7, size=13)  # mixed draws engage has_uint32 paths
        rng.random(3)
        state = json.loads(json.dumps(rng_state_to_jsonable(rng)))
        resumed = rng_from_state(state)
        control = np.random.Generator(type(rng.bit_generator)())
        control.bit_generator.state = rng.bit_generator.state
        assert np.array_equal(resumed.random(32), control.random(32))

    def test_other_bit_generators_round_trip(self):
        for cls in (np.random.PCG64, np.random.Philox, np.random.SFC64):
            rng = np.random.Generator(cls(42))
            rng.random(5)
            resumed = rng_from_state(
                json.loads(json.dumps(rng_state_to_jsonable(rng)))
            )
            assert resumed.random() == rng.random()

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(CheckpointError):
            rng_from_state({"bit_generator": "NotAGenerator"})
        with pytest.raises(CheckpointError):
            rng_from_state({})


# ----------------------------------------------------------------------
# Genome codec
# ----------------------------------------------------------------------
class TestGenomeCodec:
    def test_round_trip(self):
        genome = StressmarkGenome(subblock=("mulpd", "nop", "addpd"), lp_nops=17)
        payload = json.loads(json.dumps(encode_stressmark_genome(genome)))
        assert decode_stressmark_genome(payload) == genome


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_replaces_previous_content_completely(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, {"generation": 1, "long_padding": "x" * 4096})
        atomic_write_json(path, {"generation": 2})
        assert json.loads(path.read_text()) == {"generation": 2}
        assert not path.with_name("state.json.tmp").exists()

    def test_never_leaves_a_torn_target(self, tmp_path):
        """Even if the temp write dies, the target stays whole."""
        path = tmp_path / "state.json"
        atomic_write_json(path, {"generation": 1})
        # Simulate a crash between temp-write and replace: a stale tmp file
        # must not confuse the next writer.
        tmp = path.with_name("state.json.tmp")
        tmp.write_text("{ torn")
        atomic_write_json(path, {"generation": 2})
        assert json.loads(path.read_text()) == {"generation": 2}


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
def snapshot(generation=3, evaluations=40):
    rng = np.random.default_rng(11)
    rng.random(5)
    genomes = tuple(
        StressmarkGenome(subblock=("mulpd",) * 4, lp_nops=i) for i in range(4)
    )
    return GaSnapshot(
        generation=generation,
        population=genomes,
        rng_state=rng.bit_generator.state,
        best_genome=genomes[2],
        best_fitness=0.0391,
        stale=1,
        history=(
            GenerationStats(generation=0, best_fitness=0.03,
                            mean_fitness=0.01, evaluations_so_far=12),
            GenerationStats(generation=1, best_fitness=0.0391,
                            mean_fitness=0.02, evaluations_so_far=24),
        ),
        evaluations=evaluations,
    )


class TestCampaignCheckpoint:
    def test_fresh_directory_has_nothing_to_load(self, tmp_path):
        store = CampaignCheckpoint(tmp_path / "campaign")
        assert store.load() is None
        assert not store.has_state()

    def test_save_load_round_trips_everything(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        snap = snapshot()
        cache = {genome: 0.01 * i for i, genome in enumerate(snap.population)}
        store.save(snap, fitness_cache=cache, cache_hits=7)

        state = store.load()
        assert state.ga.generation == snap.generation
        assert state.ga.population == snap.population
        assert state.ga.best_genome == snap.best_genome
        assert state.ga.best_fitness == snap.best_fitness
        assert state.ga.stale == snap.stale
        assert state.ga.history == snap.history
        assert state.ga.evaluations == snap.evaluations
        assert state.fitness_cache == cache
        assert state.cache_hits == 7
        # RNG stream continues exactly.
        original = np.random.Generator(np.random.PCG64())
        original.bit_generator.state = snap.rng_state
        resumed = np.random.Generator(np.random.PCG64())
        resumed.bit_generator.state = state.ga.rng_state
        assert resumed.random() == original.random()

    def test_save_overwrites_atomically_and_journals(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        for generation in range(3):
            store.save(snapshot(generation=generation),
                       fitness_cache={}, cache_hits=0)
        assert store.load().ga.generation == 2
        journal = [json.loads(line)
                   for line in store.journal_path.read_text().splitlines()]
        assert [line["generation"] for line in journal] == [0, 1, 2]

    def test_meta_round_trips(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        meta = {"chip": "bulldozer", "seed": 1, "generations": 40}
        store.write_meta(meta)
        assert store.read_meta() == meta

    def test_missing_meta_is_a_clean_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            CampaignCheckpoint(tmp_path).read_meta()

    def test_corrupt_state_is_a_clean_error(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.state_path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            store.load()

    def test_wrong_version_rejected(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.save(snapshot(), fitness_cache={}, cache_hits=0)
        payload = json.loads(store.state_path.read_text())
        payload["version"] = 999
        store.state_path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            store.load()

    def test_unwritable_directory_is_a_clean_error(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o400)
        try:
            with pytest.raises(CheckpointError):
                CampaignCheckpoint(blocked / "campaign")
        finally:
            blocked.chmod(0o700)

    def test_infinity_fitness_survives(self, tmp_path):
        """Quarantined (skip-policy) genomes carry -inf through JSON."""
        store = CampaignCheckpoint(tmp_path)
        snap = snapshot()
        cache = {snap.population[0]: float("-inf")}
        store.save(snap, fitness_cache=cache, cache_hits=0)
        assert store.load().fitness_cache == cache
