"""Tests for the campaign checkpoint store and RNG round-tripping."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CampaignCheckpoint,
    atomic_write_json,
    decode_stressmark_genome,
    encode_stressmark_genome,
    rng_from_state,
    rng_state_to_jsonable,
    validate_campaign_meta,
)
from repro.core.ga import GaSnapshot, GenerationStats
from repro.core.genome import StressmarkGenome
from repro.errors import CheckpointError


# ----------------------------------------------------------------------
# RNG state round-tripping (property tests)
# ----------------------------------------------------------------------
class TestRngRoundTrip:
    @given(seed=st.integers(0, 2**63 - 1), warmup=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_save_load_draw_equals_uninterrupted_draw(self, seed, warmup):
        """The checkpoint contract: resuming the stream is invisible."""
        rng = np.random.default_rng(seed)
        rng.random(warmup)  # advance to an arbitrary point
        state = rng_state_to_jsonable(rng)

        control = np.random.default_rng(seed)
        control.random(warmup)

        resumed = rng_from_state(state)
        assert np.array_equal(resumed.random(64), control.random(64))
        assert np.array_equal(
            resumed.integers(0, 1 << 30, size=64),
            control.integers(0, 1 << 30, size=64),
        )
        assert np.array_equal(
            resumed.standard_normal(17), control.standard_normal(17)
        )

    @given(seed=st.integers(0, 2**63 - 1))
    @settings(max_examples=30, deadline=None)
    def test_state_survives_json(self, seed):
        """The jsonable state must actually be JSON, bit-exactly."""
        rng = np.random.default_rng(seed)
        rng.integers(0, 7, size=13)  # mixed draws engage has_uint32 paths
        rng.random(3)
        state = json.loads(json.dumps(rng_state_to_jsonable(rng)))
        resumed = rng_from_state(state)
        control = np.random.Generator(type(rng.bit_generator)())
        control.bit_generator.state = rng.bit_generator.state
        assert np.array_equal(resumed.random(32), control.random(32))

    def test_other_bit_generators_round_trip(self):
        for cls in (np.random.PCG64, np.random.Philox, np.random.SFC64):
            rng = np.random.Generator(cls(42))
            rng.random(5)
            resumed = rng_from_state(
                json.loads(json.dumps(rng_state_to_jsonable(rng)))
            )
            assert resumed.random() == rng.random()

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(CheckpointError):
            rng_from_state({"bit_generator": "NotAGenerator"})
        with pytest.raises(CheckpointError):
            rng_from_state({})


# ----------------------------------------------------------------------
# Genome codec
# ----------------------------------------------------------------------
class TestGenomeCodec:
    def test_round_trip(self):
        genome = StressmarkGenome(subblock=("mulpd", "nop", "addpd"), lp_nops=17)
        payload = json.loads(json.dumps(encode_stressmark_genome(genome)))
        assert decode_stressmark_genome(payload) == genome


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_replaces_previous_content_completely(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, {"generation": 1, "long_padding": "x" * 4096})
        atomic_write_json(path, {"generation": 2})
        assert json.loads(path.read_text()) == {"generation": 2}
        assert not path.with_name("state.json.tmp").exists()

    def test_never_leaves_a_torn_target(self, tmp_path):
        """Even if the temp write dies, the target stays whole."""
        path = tmp_path / "state.json"
        atomic_write_json(path, {"generation": 1})
        # Simulate a crash between temp-write and replace: a stale tmp file
        # must not confuse the next writer.
        tmp = path.with_name("state.json.tmp")
        tmp.write_text("{ torn")
        atomic_write_json(path, {"generation": 2})
        assert json.loads(path.read_text()) == {"generation": 2}


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
def snapshot(generation=3, evaluations=40):
    rng = np.random.default_rng(11)
    rng.random(5)
    genomes = tuple(
        StressmarkGenome(subblock=("mulpd",) * 4, lp_nops=i) for i in range(4)
    )
    return GaSnapshot(
        generation=generation,
        population=genomes,
        rng_state=rng.bit_generator.state,
        best_genome=genomes[2],
        best_fitness=0.0391,
        stale=1,
        history=(
            GenerationStats(generation=0, best_fitness=0.03,
                            mean_fitness=0.01, evaluations_so_far=12),
            GenerationStats(generation=1, best_fitness=0.0391,
                            mean_fitness=0.02, evaluations_so_far=24),
        ),
        evaluations=evaluations,
    )


class TestCampaignCheckpoint:
    def test_fresh_directory_has_nothing_to_load(self, tmp_path):
        store = CampaignCheckpoint(tmp_path / "campaign")
        assert store.load() is None
        assert not store.has_state()

    def test_save_load_round_trips_everything(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        snap = snapshot()
        cache = {genome: 0.01 * i for i, genome in enumerate(snap.population)}
        store.save(snap, fitness_cache=cache, cache_hits=7)

        state = store.load()
        assert state.ga.generation == snap.generation
        assert state.ga.population == snap.population
        assert state.ga.best_genome == snap.best_genome
        assert state.ga.best_fitness == snap.best_fitness
        assert state.ga.stale == snap.stale
        assert state.ga.history == snap.history
        assert state.ga.evaluations == snap.evaluations
        assert state.fitness_cache == cache
        assert state.cache_hits == 7
        # RNG stream continues exactly.
        original = np.random.Generator(np.random.PCG64())
        original.bit_generator.state = snap.rng_state
        resumed = np.random.Generator(np.random.PCG64())
        resumed.bit_generator.state = state.ga.rng_state
        assert resumed.random() == original.random()

    def test_save_overwrites_atomically_and_journals(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        for generation in range(3):
            store.save(snapshot(generation=generation),
                       fitness_cache={}, cache_hits=0)
        assert store.load().ga.generation == 2
        journal = [json.loads(line)
                   for line in store.journal_path.read_text().splitlines()]
        assert [line["generation"] for line in journal] == [0, 1, 2]

    def test_meta_round_trips(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        meta = {"chip": "bulldozer", "seed": 1, "generations": 40}
        store.write_meta(meta)
        assert store.read_meta() == meta

    def test_missing_meta_is_a_clean_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            CampaignCheckpoint(tmp_path).read_meta()

    def test_corrupt_state_is_a_clean_error(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.state_path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            store.load()

    def test_wrong_version_rejected(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.save(snapshot(), fitness_cache={}, cache_hits=0)
        payload = json.loads(store.state_path.read_text())
        payload["version"] = 999
        store.state_path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            store.load()

    def test_unwritable_directory_is_a_clean_error(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o400)
        try:
            with pytest.raises(CheckpointError):
                CampaignCheckpoint(blocked / "campaign")
        finally:
            blocked.chmod(0o700)

    def test_infinity_fitness_survives(self, tmp_path):
        """Quarantined (skip-policy) genomes carry -inf through JSON."""
        store = CampaignCheckpoint(tmp_path)
        snap = snapshot()
        cache = {snap.population[0]: float("-inf")}
        store.save(snap, fitness_cache=cache, cache_hits=0)
        assert store.load().fitness_cache == cache


# ----------------------------------------------------------------------
# Loader validation: truncated / hand-edited files fail by name
# ----------------------------------------------------------------------
class TestStateValidation:
    def corrupt(self, tmp_path, mutate):
        store = CampaignCheckpoint(tmp_path)
        store.save(snapshot(), fitness_cache={}, cache_hits=0)
        payload = json.loads(store.state_path.read_text())
        mutate(payload)
        store.state_path.write_text(json.dumps(payload))
        return store

    def test_missing_field_names_file_and_field(self, tmp_path):
        store = self.corrupt(tmp_path, lambda p: p.pop("rng_state"))
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert "rng_state" in str(excinfo.value)
        assert str(store.state_path) in str(excinfo.value)

    @pytest.mark.parametrize("field, bad", [
        ("generation", "three"),
        ("population", {"not": "a list"}),
        ("rng_state", "PCG64"),
        ("best_fitness", "0.04"),
        ("history", 7),
        ("evaluations", True),
        ("fitness_cache", "cache"),
    ])
    def test_wrong_typed_field_rejected(self, tmp_path, field, bad):
        store = self.corrupt(tmp_path, lambda p: p.update({field: bad}))
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert field in str(excinfo.value)

    def test_non_object_state_rejected(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.state_path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError):
            store.load()

    def test_malformed_cache_entry_rejected(self, tmp_path):
        store = self.corrupt(
            tmp_path, lambda p: p.update({"fitness_cache": [["only-genome"]]})
        )
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert "fitness_cache" in str(excinfo.value)

    def test_rng_state_without_bit_generator_rejected(self, tmp_path):
        store = self.corrupt(
            tmp_path, lambda p: p.update({"rng_state": {"state": {}}})
        )
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert "bit_generator" in str(excinfo.value)


class TestMetaValidation:
    def test_meta_version_mismatch_rejected(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.write_meta({"chip": "bulldozer"})
        payload = json.loads(store.meta_path.read_text())
        payload["meta_version"] = 99
        store.meta_path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError) as excinfo:
            store.read_meta()
        assert str(store.meta_path) in str(excinfo.value)

    def test_legacy_meta_without_version_is_accepted(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.meta_path.write_text(json.dumps({"chip": "phenom"}))
        assert store.read_meta() == {"chip": "phenom"}

    def test_non_object_meta_rejected(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        store.meta_path.write_text('"a string"')
        with pytest.raises(CheckpointError):
            store.read_meta()


class TestValidateCampaignMeta:
    GOOD = {
        "chip": "bulldozer", "throttle": None, "threads": 4,
        "mode": "resonant", "population": 16, "generations": 10, "seed": 1,
    }

    def test_good_meta_passes_through(self):
        assert validate_campaign_meta(dict(self.GOOD), path="meta.json") \
            == self.GOOD

    def test_nullable_throttle_accepts_int(self):
        meta = dict(self.GOOD, throttle=2)
        assert validate_campaign_meta(meta, path="meta.json") == meta

    def test_missing_field_names_field_and_path(self):
        meta = dict(self.GOOD)
        del meta["seed"]
        with pytest.raises(CheckpointError) as excinfo:
            validate_campaign_meta(meta, path="campaign/meta.json")
        assert "seed" in str(excinfo.value)
        assert "campaign/meta.json" in str(excinfo.value)

    @pytest.mark.parametrize("field, bad", [
        ("chip", 7),
        ("threads", "4"),
        ("mode", None),
        ("population", True),
        ("throttle", "off"),
    ])
    def test_wrong_type_rejected(self, field, bad):
        meta = dict(self.GOOD, **{field: bad})
        with pytest.raises(CheckpointError) as excinfo:
            validate_campaign_meta(meta, path="meta.json")
        assert field in str(excinfo.value)
