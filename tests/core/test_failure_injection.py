"""Failure-injection tests: the search stack must fail loudly and cleanly."""

import pytest

from repro.core.audit import AuditRunner
from repro.core.ga import GaConfig, GeneticAlgorithm
from repro.core.genome import GenomeSpace, StressmarkGenome
from repro.core.platform import MeasurementPlatform
from repro.errors import ConfigurationError, IsaError, ReproError, SearchError
from repro.isa.opcodes import OpcodeTable, default_table
from repro.pdn.elements import bulldozer_pdn
from repro.uarch.config import bulldozer_chip

TABLE = default_table()


def make_space():
    return GenomeSpace(table=TABLE, slots=4, replications=1,
                       lp_nops_min=0, lp_nops_max=8)


class TestGaErrorPropagation:
    def make_ga(self, fitness):
        space = make_space()
        return GeneticAlgorithm(
            random_fn=space.random_genome,
            mutate_fn=lambda g, rng, rate: space.mutate(g, rng, rate=rate),
            crossover_fn=space.crossover,
            fitness_fn=fitness,
            config=GaConfig(population_size=4, generations=2),
        )

    def test_fitness_exception_propagates_unwrapped(self):
        class BoomError(RuntimeError):
            pass

        def explode(_genome):
            raise BoomError("measurement rig on fire")

        with pytest.raises(BoomError):
            self.make_ga(explode).run()

    def test_nan_fitness_does_not_crash_selection(self):
        calls = {"n": 0}

        def sometimes_nan(genome):
            calls["n"] += 1
            return float("nan") if calls["n"] % 3 == 0 else 1.0

        result = self.make_ga(sometimes_nan).run()
        # NaNs never become the best (comparisons with NaN are False).
        assert result.best_fitness == 1.0

    def test_mutation_exception_propagates(self):
        space = make_space()

        def bad_mutate(_g, _rng, _rate):
            raise SearchError("mutation table corrupted")

        ga = GeneticAlgorithm(
            random_fn=space.random_genome,
            mutate_fn=bad_mutate,
            crossover_fn=space.crossover,
            fitness_fn=lambda g: 1.0,
            config=GaConfig(population_size=4, generations=2),
        )
        with pytest.raises(SearchError):
            ga.run()


class TestAuditRunnerGuards:
    def test_empty_opcode_pool_rejected(self):
        chip = bulldozer_chip()
        platform = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        # A table whose every opcode needs an unsupported extension.
        exotic = TABLE.subset(["vfmaddpd", "vfmaddps"])
        hypothetical = OpcodeTable(tuple(exotic))
        with pytest.raises((IsaError, SearchError)):
            AuditRunner(
                MeasurementPlatform(
                    chip.with_vdd(chip.vdd),
                    bulldozer_pdn(vdd=chip.vdd),
                ),
                table=OpcodeTable(tuple(
                    s for s in hypothetical if "fma9" not in s.extensions
                )).supported_on({"sse"}),
            )

    def test_thread_overcommit_rejected_at_measure_time(self):
        chip = bulldozer_chip()
        platform = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        from repro.core.resonance import probe_program

        program = probe_program(TABLE, hp_count=4, lp_nops=4)
        with pytest.raises(ReproError):
            platform.measure_program(program, chip.total_threads + 1)

    def test_genome_from_wrong_space_rejected_by_codegen(self):
        from repro.core.codegen import genome_to_kernel

        space = make_space()
        foreign = StressmarkGenome(subblock=("add",) * 9, lp_nops=0)
        with pytest.raises(SearchError):
            genome_to_kernel(foreign, space)


class TestPlatformGuards:
    def test_negative_supply_rejected(self):
        chip = bulldozer_chip()
        platform = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        from repro.core.resonance import probe_program

        program = probe_program(TABLE, hp_count=4, lp_nops=4)
        with pytest.raises(ConfigurationError):
            platform.measure_program(program, 1, supply_v=-1.0)

    def test_solver_cache_keyed_by_supply(self):
        chip = bulldozer_chip()
        platform = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))
        a = platform.solver_at(1.2)
        b = platform.solver_at(1.2)
        c = platform.solver_at(1.1)
        assert a is b
        assert a is not c
        assert c.network.params.vdd_nominal == pytest.approx(1.1)
