"""The shared atomic-write primitives extracted from the checkpoint store."""

import errno
import json

import pytest

from repro.core.atomicio import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    classify_write_error,
)
from repro.errors import CheckpointError, ConfigurationError
from repro.supervision.chaos import inject_write_failures


class TestAtomicWrites:
    def test_bytes_land_and_tmp_is_gone(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert not (tmp_path / "blob.bin.tmp").exists()

    def test_json_compact_default(self, tmp_path):
        target = tmp_path / "data.json"
        atomic_write_json(target, {"b": 1, "a": 2})
        assert json.loads(target.read_text()) == {"b": 1, "a": 2}

    def test_json_pretty_form(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_json(target, {"b": 1, "a": 2}, indent=2,
                          sort_keys=True, newline=True)
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

    def test_text_round_trips(self, tmp_path):
        target = tmp_path / "notes.md"
        atomic_write_text(target, "# héllo\n")
        assert target.read_text() == "# héllo\n"

    def test_failed_write_leaves_previous_file_intact(self, tmp_path):
        target = tmp_path / "data.json"
        atomic_write_json(target, {"generation": 1})
        with inject_write_failures(count=1, errno=errno.ENOSPC):
            with pytest.raises(CheckpointError, match="No space left"):
                atomic_write_json(target, {"generation": 2})
        assert json.loads(target.read_text()) == {"generation": 1}
        assert not (tmp_path / "data.json.tmp").exists()

    def test_missing_directory_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="misconfigured"):
            atomic_write_bytes(tmp_path / "nodir" / "data.bin", b"x")


class TestAppendJsonl:
    def test_appends_one_line_per_call(self, tmp_path):
        target = tmp_path / "journal.jsonl"
        append_jsonl(target, {"n": 1})
        append_jsonl(target, {"n": 2})
        lines = target.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]

    def test_bad_location_classified(self, tmp_path):
        with pytest.raises(ConfigurationError):
            append_jsonl(tmp_path / "nodir" / "journal.jsonl", {"n": 1})


class TestClassification:
    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EDQUOT,
                                      errno.EIO, errno.EFBIG])
    def test_storage_failures_are_checkpoint_errors(self, code):
        error = classify_write_error(OSError(code, "boom"), "p")
        assert isinstance(error, CheckpointError)
        assert not isinstance(error, ConfigurationError)

    @pytest.mark.parametrize("code", [errno.EACCES, errno.EROFS,
                                      errno.ENOENT])
    def test_bad_locations_are_configuration_errors(self, code):
        assert isinstance(classify_write_error(OSError(code, "boom"), "p"),
                          ConfigurationError)

    def test_unknown_errno_defaults_to_checkpoint_error(self):
        error = classify_write_error(OSError(errno.EINTR, "boom"), "p")
        assert isinstance(error, CheckpointError)

    def test_checkpoint_module_reexports(self):
        """Legacy import sites keep working after the extraction."""
        from repro.core import checkpoint

        assert checkpoint.atomic_write_json is atomic_write_json
        assert checkpoint.classify_write_error is classify_write_error
        assert checkpoint.append_jsonl is append_jsonl
