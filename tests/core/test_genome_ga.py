"""Tests for the stressmark genome space and the GA engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import genome_to_kernel, genome_to_program
from repro.core.engine import EvaluationEngine, ParallelExecutor
from repro.core.ga import GaConfig, GeneticAlgorithm
from repro.core.genome import GenomeSpace, StressmarkGenome
from repro.errors import SearchError
from repro.isa.opcodes import default_table

TABLE = default_table()


def space_of(slots=8, reps=2, lp=(0, 64)):
    return GenomeSpace(table=TABLE, slots=slots, replications=reps,
                       lp_nops_min=lp[0], lp_nops_max=lp[1])


class TestGenomeSpace:
    def test_random_genome_in_space(self):
        space = space_of()
        rng = np.random.default_rng(0)
        for _ in range(20):
            genome = space.random_genome(rng)
            space.validate(genome)  # must not raise

    def test_mutation_stays_in_space_and_changes_something(self):
        space = space_of()
        rng = np.random.default_rng(1)
        genome = space.random_genome(rng)
        mutants = [space.mutate(genome, rng, rate=0.5) for _ in range(10)]
        for m in mutants:
            space.validate(m)
        assert any(m != genome for m in mutants)

    def test_zero_rate_mutation_is_identity_on_slots(self):
        space = space_of()
        rng = np.random.default_rng(2)
        genome = space.random_genome(rng)
        assert space.mutate(genome, rng, rate=0.0) == genome

    def test_crossover_mixes_parents(self):
        space = space_of(slots=16)
        rng = np.random.default_rng(3)
        a = StressmarkGenome(subblock=("add",) * 16, lp_nops=0)
        b = StressmarkGenome(subblock=("mulpd",) * 16, lp_nops=64)
        child = space.crossover(a, b, rng)
        space.validate(child)
        counts = {m: child.subblock.count(m) for m in ("add", "mulpd")}
        assert counts["add"] > 0 and counts["mulpd"] > 0
        assert child.lp_nops in (0, 64)

    def test_validate_rejects_foreign_genomes(self):
        space = space_of(slots=4)
        with pytest.raises(SearchError):
            space.validate(StressmarkGenome(subblock=("add",) * 5, lp_nops=0))
        with pytest.raises(SearchError):
            space.validate(StressmarkGenome(subblock=("hcf",) * 4, lp_nops=0))
        with pytest.raises(SearchError):
            space.validate(StressmarkGenome(subblock=("add",) * 4, lp_nops=999))

    def test_genome_validation(self):
        with pytest.raises(SearchError):
            StressmarkGenome(subblock=(), lp_nops=0)
        with pytest.raises(SearchError):
            StressmarkGenome(subblock=("add",), lp_nops=-1)

    def test_genomes_are_hashable_value_objects(self):
        a = StressmarkGenome(subblock=("add", "mulpd"), lp_nops=4)
        b = StressmarkGenome(subblock=("add", "mulpd"), lp_nops=4)
        assert a == b
        assert hash(a) == hash(b)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_crossover_slots_come_from_parents(self, seed):
        space = space_of(slots=12)
        rng = np.random.default_rng(seed)
        a = space.random_genome(rng)
        b = space.random_genome(rng)
        child = space.crossover(a, b, rng)
        for i, slot in enumerate(child.subblock):
            assert slot in (a.subblock[i], b.subblock[i])


class TestCodegen:
    def test_kernel_shape_follows_genome(self):
        space = space_of(slots=6, reps=3, lp=(0, 64))
        genome = StressmarkGenome(subblock=("mulpd", "add", "nop") * 2, lp_nops=10)
        kernel = genome_to_kernel(genome, space, name="g")
        assert len(kernel.hp) == 18  # 6 slots x 3 replications
        assert len(kernel.lp) == 10
        assert kernel.name == "g"

    def test_subblock_replication_is_literal(self):
        space = space_of(slots=2, reps=4)
        genome = StressmarkGenome(subblock=("imul", "mulpd"), lp_nops=0)
        kernel = genome_to_kernel(genome, space)
        mnemonics = [i.spec.mnemonic for i in kernel.hp]
        assert mnemonics == ["imul", "mulpd"] * 4

    def test_program_iterations(self):
        space = space_of(slots=2)
        genome = StressmarkGenome(subblock=("add", "add"), lp_nops=0)
        prog = genome_to_program(genome, space, iterations=77)
        assert prog.iterations == 77
        with pytest.raises(SearchError):
            genome_to_program(genome, space, iterations=0)


def toy_fitness(genome: StressmarkGenome) -> float:
    """Module-level (hence picklable) copy of the toy fitness function."""
    return genome.subblock.count("mulpd") + 0.001 * genome.lp_nops


class FakeFitness:
    """Deterministic toy fitness: count of 'mulpd' slots plus lp bonus."""

    def __init__(self):
        self.calls = 0
        self.seen: list[StressmarkGenome] = []

    def __call__(self, genome: StressmarkGenome) -> float:
        self.calls += 1
        self.seen.append(genome)
        return toy_fitness(genome)


class TestGeneticAlgorithm:
    def make_ga(self, fitness, *, generations=15, seed=0, patience=50):
        space = space_of(slots=8, lp=(0, 64))
        return GeneticAlgorithm(
            random_fn=space.random_genome,
            mutate_fn=lambda g, rng, rate: space.mutate(g, rng, rate=rate),
            crossover_fn=space.crossover,
            fitness_fn=fitness,
            config=GaConfig(population_size=12, generations=generations,
                            seed=seed, stagnation_patience=patience),
        )

    def test_ga_improves_fitness(self):
        fitness = FakeFitness()
        result = self.make_ga(fitness, generations=50).run()
        assert result.best_fitness >= 6  # near-saturated mulpd count
        assert result.history[-1].best_fitness >= result.history[0].best_fitness

    def test_history_monotone_best(self):
        result = self.make_ga(FakeFitness()).run()
        bests = [h.best_fitness for h in result.history]
        assert bests == sorted(bests)

    def test_memoisation_avoids_reevaluating(self):
        fitness = FakeFitness()
        result = self.make_ga(fitness).run()
        assert fitness.calls == result.evaluations

    def test_fitness_never_called_twice_per_genome(self):
        fitness = FakeFitness()
        self.make_ga(fitness, generations=25).run()
        assert len(fitness.seen) == len(set(fitness.seen))

    def test_evaluations_counts_unique_genomes(self):
        fitness = FakeFitness()
        result = self.make_ga(fitness, generations=25).run()
        assert result.evaluations == len(set(fitness.seen))

    def test_engine_as_fitness_matches_plain_callable(self):
        plain = self.make_ga(FakeFitness(), seed=9).run()
        engine = EvaluationEngine(toy_fitness)
        via_engine = self.make_ga(engine, seed=9).run()
        assert via_engine.best_genome == plain.best_genome
        assert via_engine.best_fitness == plain.best_fitness
        assert via_engine.evaluations == plain.evaluations

    def test_serial_and_parallel_backends_agree(self):
        serial = self.make_ga(EvaluationEngine(toy_fitness), seed=3).run()
        with ParallelExecutor(2) as pool:
            engine = EvaluationEngine(toy_fitness, executor=pool)
            parallel = self.make_ga(engine, seed=3).run()
        assert parallel.best_genome == serial.best_genome
        assert parallel.best_fitness == serial.best_fitness
        assert parallel.evaluations == serial.evaluations

    def test_seeded_runs_reproduce(self):
        a = self.make_ga(FakeFitness(), seed=5).run()
        b = self.make_ga(FakeFitness(), seed=5).run()
        assert a.best_genome == b.best_genome
        assert a.best_fitness == b.best_fitness

    def test_stagnation_stops_early(self):
        def constant(genome):
            return 1.0

        result = self.make_ga(constant, generations=100, patience=3).run()
        assert result.stopped_early
        assert len(result.history) <= 5

    def test_seeds_enter_population(self):
        elite = StressmarkGenome(subblock=("mulpd",) * 8, lp_nops=64)
        result = self.make_ga(FakeFitness(), generations=1).run(seeds=[elite])
        assert result.best_fitness == pytest.approx(8 + 0.064)

    def test_config_validation(self):
        with pytest.raises(SearchError):
            GaConfig(population_size=1)
        with pytest.raises(SearchError):
            GaConfig(tournament_size=1)
        with pytest.raises(SearchError):
            GaConfig(mutation_rate=2.0)
        with pytest.raises(SearchError):
            GaConfig(elite_count=24, population_size=24)
