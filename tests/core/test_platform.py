"""Tests for the measurement platform (the closed loop's 'Measure HW' box)."""

import numpy as np
import pytest

from repro.core.platform import Measurement, MeasurementPlatform
from repro.core.resonance import probe_program
from repro.errors import ConfigurationError, MeasurementError
from repro.isa import RegisterAllocator, ThreadProgram, build_kernel, default_table, make_instruction
from repro.pdn.elements import bulldozer_pdn
from repro.power.trace import CurrentTrace
from repro.uarch.config import bulldozer_chip

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


def resonant_program():
    # Period-32 probe: 32 FMA + NOP filler (the known-resonant shape).
    return probe_program(TABLE, hp_count=32, lp_nops=32 * 4 - 32 - 1)


class TestConstruction:
    def test_vdd_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementPlatform(bulldozer_chip(), bulldozer_pdn(vdd=1.0))

    def test_warmup_floor(self):
        with pytest.raises(ConfigurationError):
            MeasurementPlatform(bulldozer_chip(), bulldozer_pdn(vdd=1.2),
                                warmup_iterations=2)


class TestMeasureProgram:
    def test_periodic_measurement(self, platform):
        m = platform.measure_program(resonant_program(), 4)
        assert m.period_cycles is not None
        assert m.iteration_cycles == pytest.approx(32, abs=2)
        assert m.max_droop_v > 0.05
        assert len(m.sensitivity) == m.period_cycles
        assert m.steady_frequency_hz == pytest.approx(100e6, rel=0.1)

    def test_droop_grows_with_thread_count(self, platform):
        program = resonant_program()
        droops = [platform.measure_program(program, t).max_droop_v
                  for t in (1, 2, 4)]
        assert droops[0] < droops[1] < droops[2]

    def test_aligned_phases_are_worst(self, platform):
        program = resonant_program()
        aligned = platform.measure_program(program, 4).max_droop_v
        period = platform.measure_program(program, 4).period_cycles
        staggered = platform.measure_program(
            program, 4, module_phases=[0, period // 4, period // 2,
                                       3 * period // 4]
        ).max_droop_v
        assert aligned > staggered

    def test_mean_power_reasonable(self, platform):
        m = platform.measure_program(resonant_program(), 4)
        assert 10 < m.mean_power_w < 400

    def test_lower_supply_deepens_droop(self, platform):
        program = resonant_program()
        nominal = platform.measure_program(program, 4)
        lowered = platform.measure_program(program, 4, supply_v=1.0)
        assert lowered.max_droop_v > nominal.max_droop_v
        assert lowered.voltage.vdd_nominal == pytest.approx(1.0)

    def test_phase_vector_validated(self, platform):
        with pytest.raises(MeasurementError):
            platform.measure_program(resonant_program(), 4, module_phases=[0, 1])

    def test_supply_validated(self, platform):
        with pytest.raises(ConfigurationError):
            platform.measure_program(resonant_program(), 4, supply_v=0.0)

    def test_module_runs_memoised_across_measurements(self, platform):
        program = resonant_program()
        platform.measure_program(program, 4)
        cached = len(platform.chip_sim._cache)
        platform.measure_program(program, 4, supply_v=1.1)
        assert len(platform.chip_sim._cache) == cached  # reused simulations

    def test_transient_fallback_for_unstable_loops(self, platform):
        # divpd's 20-cycle unit occupancy produces long non-repeating
        # patterns -> the platform takes the transient path.
        alloc = RegisterAllocator()
        sub = tuple(make_instruction(TABLE.get(m), alloc)
                    for m in ("divpd", "mulpd", "divpd", "add"))
        kernel = build_kernel(sub, replications=3, lp_nops=17,
                              nop_spec=TABLE.nop)
        m = platform.measure_program(ThreadProgram(kernel, 4096), 4)
        assert m.max_droop_v > 0
        assert np.all(np.isfinite(m.voltage.samples))


class TestMeasureCurrent:
    def test_external_trace_measurement(self, platform):
        dt = platform.chip.cycle_time_s
        current = CurrentTrace(np.full(2000, 30.0), dt)
        m = platform.measure_current(current)
        assert isinstance(m, Measurement)
        assert m.period_cycles is None
        assert m.mean_current_a == pytest.approx(30.0)

    def test_dt_mismatch_rejected(self, platform):
        current = CurrentTrace(np.ones(100), 1e-9)
        with pytest.raises(MeasurementError):
            platform.measure_current(current)

    def test_sensitivity_length_checked(self, platform):
        dt = platform.chip.cycle_time_s
        current = CurrentTrace(np.ones(100), dt)
        with pytest.raises(MeasurementError):
            platform.measure_current(current, sensitivity=np.ones(5))
