"""Tests for the stressmark qualification pipeline."""

import json

import pytest

from repro.core.audit import AuditConfig, AuditRunner, CampaignQualification
from repro.core.engine import make_executor
from repro.core.faults import (
    FaultInjectingBackend,
    FaultInjectionConfig,
    FaultPolicy,
)
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.core.qualify import (
    ARTIFACT,
    FRAGILE,
    NOMINAL,
    PASS,
    Perturbation,
    QualificationCheckpoint,
    QualificationFitness,
    QualifyConfig,
    StressmarkQualifier,
)
from repro.errors import CheckpointError, ConfigurationError, InvariantViolation
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table
from repro.workloads.stressmarks import a_res_canned, stressmark_program

#: Small but complete perturbation grid: one point per axis beyond nominal.
TINY = QualifyConfig(
    jitter_repeats=1,
    smt_offsets=(2,),
    supply_points=1,
    pdn_stages=("die",),
    pdn_fields=("resistance_ohm",),
)


@pytest.fixture(scope="module")
def a_res():
    pool = default_table().supported_on(bulldozer_testbed().chip.extensions)
    return stressmark_program(a_res_canned(pool))


def qualifier(platform=None, config=TINY, **kwargs):
    return StressmarkQualifier(
        platform if platform is not None else bulldozer_testbed(),
        threads=2,
        config=config,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Perturbations
# ----------------------------------------------------------------------
class TestPerturbation:
    def test_axis_and_label_are_presentation_only(self):
        anchor = Perturbation(axis="supply", label="nominal")
        assert anchor == NOMINAL
        assert hash(anchor) == hash(NOMINAL)

    def test_physical_knobs_differentiate(self):
        assert Perturbation(jitter_seed=3) != Perturbation(jitter_seed=4)
        assert Perturbation(supply_v=1.2) != NOMINAL

    def test_pdn_knobs_must_come_together(self):
        with pytest.raises(ConfigurationError):
            Perturbation(pdn_stage="die")

    @pytest.mark.parametrize("kwargs", [
        {"pdn_stage": "pcb", "pdn_field": "resistance_ohm", "pdn_scale": 1.1},
        {"pdn_stage": "die", "pdn_field": "mass_kg", "pdn_scale": 1.1},
        {"pdn_stage": "die", "pdn_field": "resistance_ohm", "pdn_scale": 0.0},
        {"supply_v": -1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            Perturbation(**kwargs)


class TestQualifyConfig:
    @pytest.mark.parametrize("kwargs", [
        {"jitter_repeats": 0},
        {"supply_points": 0},
        {"supply_span_v": 0.0},
        {"pdn_tolerance": 1.5},
        {"pass_retention": 0.2, "artifact_retention": 0.5},
        {"pdn_stages": ("motherboard",)},
        {"pdn_fields": ("mass_kg",)},
        {"max_fallbacks": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            QualifyConfig(**kwargs)


# ----------------------------------------------------------------------
# The qualifier
# ----------------------------------------------------------------------
class TestStressmarkQualifier:
    def test_grid_is_deterministic_under_seed(self):
        grids = [qualifier(config=QualifyConfig(seed=9)).perturbation_axes()
                 for _ in range(2)]
        assert grids[0] == grids[1]
        different = qualifier(config=QualifyConfig(seed=10)).perturbation_axes()
        assert grids[0] != different

    def test_every_axis_leads_with_the_nominal_anchor(self):
        for _axis, perturbations in qualifier().perturbation_axes():
            assert perturbations[0] == NOMINAL

    def test_report_is_bit_deterministic(self, a_res):
        reports = [qualifier().qualify_program(a_res, name="a-res")
                   for _ in range(2)]
        assert reports[0].nominal_droop_v == reports[1].nominal_droop_v
        for first, second in zip(reports[0].axes, reports[1].axes):
            assert first.droops == second.droops
        assert reports[0].verdict == reports[1].verdict
        assert reports[0].robustness == reports[1].robustness

    def test_nominal_anchor_hits_cache_on_every_axis(self, a_res):
        report = qualifier().qualify_program(a_res, name="a-res")
        # 1 nominal + 1 jitter + 1 smt + 1 supply + 2 pdn = 6 fresh points;
        # the anchor of each of the 4 axes is a cache hit.
        assert report.evaluations == 6
        assert report.cache_hits == 4
        assert report.verdict in (PASS, FRAGILE, ARTIFACT)

    def test_parallel_and_serial_agree(self, a_res):
        serial = qualifier().qualify_program(a_res, name="a-res")
        pool = make_executor(2)
        try:
            parallel = qualifier(
                executor=pool, platform_factory=bulldozer_testbed,
            ).qualify_program(a_res, name="a-res")
        finally:
            pool.close()
        for left, right in zip(serial.axes, parallel.axes):
            assert left.droops == right.droops
        assert serial.verdict == parallel.verdict

    def test_report_accessors(self, a_res):
        report = qualifier().qualify_program(a_res, name="a-res")
        assert report.axis("pdn").axis == "pdn"
        with pytest.raises(KeyError):
            report.axis("moon-phase")
        table = report.summary_table()
        assert "a-res" in table and report.verdict in table

    def test_verdict_thresholds(self):
        q = qualifier(config=QualifyConfig(
            pass_retention=0.6, artifact_retention=0.3, min_droop_v=1e-6))
        assert q._verdict(0.05, 0.95) == PASS
        assert q._verdict(0.05, 0.45) == FRAGILE
        assert q._verdict(0.05, 0.10) == ARTIFACT
        assert q._verdict(0.0, 1.0) == ARTIFACT  # nothing to qualify
        assert q._verdict(float("nan"), 1.0) == ARTIFACT
        assert q._verdict(float("-inf"), 1.0) == ARTIFACT


# ----------------------------------------------------------------------
# Corruption must surface as InvariantViolation, not a finite fitness
# ----------------------------------------------------------------------
class TestQualificationUnderFaults:
    def chaos(self, mode):
        backend = FaultInjectingBackend(
            bulldozer_testbed().backend,
            config=FaultInjectionConfig(
                seed=0, corrupt_rate=1.0, corrupt_mode=mode),
        )
        return MeasurementPlatform(backend=backend)

    @pytest.mark.parametrize("mode", ["nan", "inf", "truncate"])
    def test_corrupt_traces_raise_instead_of_scoring(self, mode, a_res):
        q = qualifier(platform=self.chaos(mode))
        with pytest.raises(InvariantViolation):
            q.qualify_program(a_res, name="a-res")

    def test_skip_policy_turns_corruption_into_artifact(self, a_res):
        q = qualifier(
            platform=self.chaos("nan"),
            fault_policy=FaultPolicy(max_retries=0, on_exhaust="skip"),
        )
        report = q.qualify_program(a_res, name="a-res")
        assert report.verdict == ARTIFACT
        # The nominal anchor is measured through the corrupt platform and
        # quarantined to -inf; a droop that cannot be measured nominally
        # is an artifact regardless of how the perturbed points score.
        assert report.nominal_droop_v == float("-inf")
        assert report.axes[0].droops[0] == float("-inf")


# ----------------------------------------------------------------------
# Resumable qualification
# ----------------------------------------------------------------------
class TestQualificationCheckpoint:
    def test_resume_skips_banked_measurements(self, tmp_path, a_res):
        first = qualifier(
            checkpoint=QualificationCheckpoint(tmp_path),
        ).qualify_program(a_res, name="a-res")
        assert first.evaluations > 0
        second = qualifier(
            checkpoint=QualificationCheckpoint(tmp_path),
        ).qualify_program(a_res, name="a-res")
        assert second.evaluations == 0
        assert second.verdict == first.verdict
        for left, right in zip(first.axes, second.axes):
            assert left.droops == right.droops

    def test_one_file_per_stressmark(self, tmp_path, a_res):
        store = QualificationCheckpoint(tmp_path)
        qualifier(checkpoint=store).qualify_program(a_res, name="a-res")
        qualifier(checkpoint=store).qualify_program(a_res, name="A Res 2!")
        assert (tmp_path / "qualify_a-res.json").exists()
        assert (tmp_path / "qualify_a-res-2.json").exists()

    def test_identity_mismatch_is_a_hard_error(self, tmp_path, a_res):
        store = QualificationCheckpoint(tmp_path)
        store.save(stressmark="a-res", seed=0, measured={NOMINAL: 0.05})
        with pytest.raises(CheckpointError):
            store.load(stressmark="a-res", seed=99)

    def test_corrupt_file_names_the_path(self, tmp_path):
        store = QualificationCheckpoint(tmp_path)
        path = store.state_path("a-res")
        path.write_text("{ torn")
        with pytest.raises(CheckpointError) as excinfo:
            store.load(stressmark="a-res", seed=0)
        assert str(path) in str(excinfo.value)

    def test_version_mismatch_rejected(self, tmp_path):
        store = QualificationCheckpoint(tmp_path)
        store.save(stressmark="a-res", seed=0, measured={})
        path = store.state_path("a-res")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            store.load(stressmark="a-res", seed=0)

    def test_malformed_measured_rejected(self, tmp_path):
        store = QualificationCheckpoint(tmp_path)
        store.save(stressmark="a-res", seed=0, measured={})
        path = store.state_path("a-res")
        payload = json.loads(path.read_text())
        payload["measured"] = "not-a-list"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            store.load(stressmark="a-res", seed=0)


# ----------------------------------------------------------------------
# Fitness internals
# ----------------------------------------------------------------------
class TestQualificationFitness:
    def test_needs_platform_or_factory(self, a_res):
        with pytest.raises(ConfigurationError):
            QualificationFitness(a_res, 2)

    def test_perturbed_platforms_share_the_chip_simulator(self, a_res):
        platform = bulldozer_testbed()
        fitness = QualificationFitness(a_res, 2, platform=platform)
        fitness(Perturbation(pdn_stage="die", pdn_field="resistance_ohm",
                             pdn_scale=1.1))
        (perturbed,) = fitness._perturbed.values()
        assert perturbed.chip_sim is platform.chip_sim
        assert perturbed.pdn is not platform.pdn

    def test_perturbed_platform_is_reused(self, a_res):
        fitness = QualificationFitness(a_res, 2, platform=bulldozer_testbed())
        p = Perturbation(jitter_seed=7)
        fitness(p)
        fitness(Perturbation(jitter_seed=7, smt_phase_cycles=1))
        assert len(fitness._perturbed) == 1


# ----------------------------------------------------------------------
# Campaign integration: qualify the GA winner
# ----------------------------------------------------------------------
class TestAuditQualification:
    CONFIG = AuditConfig(
        threads=2,
        ga=GaConfig(population_size=6, generations=2, seed=1),
    )

    def test_winner_is_qualified(self):
        runner = AuditRunner(bulldozer_testbed(), config=self.CONFIG)
        result = runner.run(qualify=TINY)
        qual = result.qualification
        assert isinstance(qual, CampaignQualification)
        assert qual.winner_report.stressmark == result.name
        assert qual.verdict in (PASS, FRAGILE, ARTIFACT)
        assert not qual.demoted or qual.chosen > 0

    def test_without_qualify_nothing_changes(self):
        runner = AuditRunner(bulldozer_testbed(), config=self.CONFIG)
        plain = runner.run()
        assert plain.qualification is None

    def test_artifact_winner_falls_back_to_runner_ups(self):
        # An impossibly high droop floor declares every candidate an
        # ARTIFACT: the campaign must still complete, qualify fallbacks,
        # and keep the best-robustness candidate.
        config = QualifyConfig(
            jitter_repeats=TINY.jitter_repeats,
            smt_offsets=TINY.smt_offsets,
            supply_points=TINY.supply_points,
            pdn_stages=TINY.pdn_stages,
            pdn_fields=TINY.pdn_fields,
            min_droop_v=10.0,
            max_fallbacks=2,
        )
        runner = AuditRunner(bulldozer_testbed(), config=self.CONFIG)
        result = runner.run(qualify=config)
        qual = result.qualification
        assert qual.verdict == ARTIFACT  # nothing can pass a 10 V floor
        assert len(qual.reports) == 1 + 2
        assert qual.chosen_report is qual.reports[qual.chosen]

    def test_demotion_swaps_the_shipped_kernel(self):
        # Force the winner to be an artifact but let fallbacks pass:
        # min_droop_v sits between the winner's droop and nothing —
        # instead, drive demotion directly through the qualifier seam by
        # qualifying with thresholds the winner cannot meet but a
        # runner-up can.  The deterministic way: rank by robustness with
        # every verdict ARTIFACT and check the promoted kernel is
        # re-measured and re-labelled.
        config = QualifyConfig(
            jitter_repeats=TINY.jitter_repeats,
            smt_offsets=TINY.smt_offsets,
            supply_points=TINY.supply_points,
            pdn_stages=TINY.pdn_stages,
            pdn_fields=TINY.pdn_fields,
            min_droop_v=10.0,
            max_fallbacks=1,
        )
        runner = AuditRunner(bulldozer_testbed(), config=self.CONFIG)
        result = runner.run(qualify=config)
        qual = result.qualification
        if qual.demoted:
            promoted = qual.chosen_report
            assert promoted.robustness >= qual.winner_report.robustness
            assert result.max_droop_v > 0
        else:
            assert qual.chosen == 0

    def test_checkpointed_qualification_resumes(self, tmp_path):
        runner = AuditRunner(bulldozer_testbed(), config=self.CONFIG)
        store = QualificationCheckpoint(tmp_path)
        first = runner.run(qualify=TINY, qualify_checkpoint=store)
        assert any(tmp_path.glob("qualify_*.json"))
        second = AuditRunner(bulldozer_testbed(), config=self.CONFIG).run(
            qualify=TINY, qualify_checkpoint=QualificationCheckpoint(tmp_path)
        )
        assert (second.qualification.winner_report.evaluations == 0)
        assert (first.qualification.verdict == second.qualification.verdict)
