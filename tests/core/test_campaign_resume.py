"""Crash/resume equivalence: the checkpoint layer's acceptance tests.

The contract under test: a campaign killed mid-generation — by an injected
in-process crash or a real SIGKILL — and resumed from its checkpoint
directory produces the *identical* best stressmark, droop, evaluation
count, and generation history as the same campaign run uninterrupted.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.audit import AuditConfig, AuditRunner
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.ga import GaConfig, GaSnapshot, GeneticAlgorithm
from repro.core.telemetry import CheckpointEvent, GenerationEvent
from repro.errors import CheckpointError, SearchError
from repro.experiments.setup import bulldozer_testbed

CONFIG = AuditConfig(
    threads=2,
    ga=GaConfig(population_size=6, generations=3, seed=1),
)


class CrashAfter:
    """Observer that kills the run after the Nth scored generation."""

    class Boom(RuntimeError):
        pass

    def __init__(self, generations):
        self.generations = generations
        self.seen = 0

    def on_event(self, event):
        if isinstance(event, GenerationEvent):
            self.seen += 1
            if self.seen >= self.generations:
                raise self.Boom(f"injected crash after generation "
                                f"{event.generation}")


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def run_uninterrupted(checkpoint=None):
    runner = AuditRunner(bulldozer_testbed(), config=CONFIG)
    return runner.run(checkpoint=checkpoint)


class TestInjectedCrashResume:
    @pytest.mark.parametrize("crash_after", [1, 2])
    def test_resume_matches_uninterrupted(self, tmp_path, crash_after):
        control = run_uninterrupted()

        store = CampaignCheckpoint(tmp_path / "campaign")
        crasher = CrashAfter(crash_after)
        runner = AuditRunner(
            bulldozer_testbed(), config=CONFIG, observers=[crasher]
        )
        with pytest.raises(CrashAfter.Boom):
            runner.run(checkpoint=store)
        # The run died mid-campaign with at least one snapshot on disk.
        banked = store.load()
        assert banked is not None
        assert banked.ga.generation < CONFIG.ga.generations

        resumed = AuditRunner(bulldozer_testbed(), config=CONFIG).run(
            checkpoint=store, resume=True
        )

        assert resumed.genome == control.genome
        assert resumed.max_droop_v == control.max_droop_v
        assert resumed.ga_result.best_fitness == control.ga_result.best_fitness
        assert resumed.ga_result.history == control.ga_result.history
        assert resumed.ga_result.evaluations == control.ga_result.evaluations

    def test_checkpoint_every_generation_and_resume_continues_store(
        self, tmp_path
    ):
        store = CampaignCheckpoint(tmp_path)
        observer = RecordingObserver()
        runner = AuditRunner(
            bulldozer_testbed(), config=CONFIG, observers=[observer]
        )
        runner.run(checkpoint=store)
        checkpoints = [e for e in observer.events
                       if isinstance(e, CheckpointEvent)]
        assert [e.generation for e in checkpoints] == [0, 1, 2]
        journal = [json.loads(line)
                   for line in store.journal_path.read_text().splitlines()]
        assert [line["generation"] for line in journal] == [0, 1, 2]

    def test_resume_serves_banked_generations_from_cache(self, tmp_path):
        """Re-scoring the crashed generation costs no extra evaluations."""
        store = CampaignCheckpoint(tmp_path)
        crasher = CrashAfter(2)
        runner = AuditRunner(
            bulldozer_testbed(), config=CONFIG, observers=[crasher]
        )
        with pytest.raises(CrashAfter.Boom):
            runner.run(checkpoint=store)
        control = run_uninterrupted()
        resumed = AuditRunner(bulldozer_testbed(), config=CONFIG).run(
            checkpoint=store, resume=True
        )
        assert resumed.ga_result.evaluations == control.ga_result.evaluations

    def test_resume_without_store_is_an_error(self):
        with pytest.raises(CheckpointError):
            AuditRunner(bulldozer_testbed(), config=CONFIG).run(resume=True)

    def test_resume_from_empty_directory_is_an_error(self, tmp_path):
        store = CampaignCheckpoint(tmp_path / "empty")
        with pytest.raises(CheckpointError):
            AuditRunner(bulldozer_testbed(), config=CONFIG).run(
                checkpoint=store, resume=True
            )

    def test_resume_rejects_population_size_mismatch(self, tmp_path):
        store = CampaignCheckpoint(tmp_path)
        crasher = CrashAfter(1)
        runner = AuditRunner(
            bulldozer_testbed(), config=CONFIG, observers=[crasher]
        )
        with pytest.raises(CrashAfter.Boom):
            runner.run(checkpoint=store)
        bigger = AuditConfig(
            threads=2, ga=GaConfig(population_size=8, generations=3, seed=1)
        )
        with pytest.raises(SearchError):
            AuditRunner(bulldozer_testbed(), config=bigger).run(
                checkpoint=store, resume=True
            )


class TestGaLevelResume:
    """The GA snapshot contract, isolated from the AUDIT plumbing."""

    @staticmethod
    def make_ga(fitness, observers=()):
        return GeneticAlgorithm(
            random_fn=lambda rng: int(rng.integers(0, 1000)),
            mutate_fn=lambda g, rng, rate: int(
                g + rng.integers(-3, 4)) % 1000,
            crossover_fn=lambda a, b, rng: int((a + b) // 2),
            fitness_fn=fitness,
            config=GaConfig(population_size=8, generations=10, seed=4,
                            stagnation_patience=50),
            observers=observers,
        )

    @staticmethod
    def trajectory(history):
        """History minus evaluations_so_far: restoring the evaluator's
        cache/counter is the caller's job (AuditRunner.restore_cache), not
        the GA's, so a bare-GA resume only promises the search trajectory."""
        return [(s.generation, s.best_fitness, s.mean_fitness)
                for s in history]

    def test_snapshot_resume_replays_remaining_generations(self):
        fitness = lambda g: -abs(g - 623) / 1000  # noqa: E731
        control = self.make_ga(fitness).run()

        snapshots = []
        self.make_ga(fitness).run(checkpoint_fn=snapshots.append)
        assert [s.generation for s in snapshots] == list(range(10))

        for snapshot in snapshots[::4]:
            resumed = self.make_ga(fitness).run(resume=snapshot)
            assert resumed.best_genome == control.best_genome
            assert resumed.best_fitness == control.best_fitness
            assert (self.trajectory(resumed.history)
                    == self.trajectory(control.history))

    def test_snapshot_round_trip_through_store(self, tmp_path):
        """A GaSnapshot survives the JSON store bit-exactly (int genomes)."""
        fitness = lambda g: float(g % 97)  # noqa: E731
        snapshots = []
        control = self.make_ga(fitness).run(checkpoint_fn=snapshots.append)
        store = CampaignCheckpoint(
            tmp_path, encode_genome=lambda g: g, decode_genome=lambda p: p
        )
        store.save(snapshots[5], fitness_cache={}, cache_hits=0)
        loaded = store.load().ga
        assert isinstance(loaded, GaSnapshot)
        resumed = self.make_ga(fitness).run(resume=loaded)
        assert resumed.best_genome == control.best_genome
        assert (self.trajectory(resumed.history)
                == self.trajectory(control.history))


# ----------------------------------------------------------------------
# The real thing: SIGKILL a live campaign process, then resume it
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSigkillResume:
    ARGS = ["--chip", "bulldozer", "--threads", "2", "--population", "6",
            "--seed", "1", "--generations", "8"]

    @staticmethod
    def cli(*extra):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.run(
            [sys.executable, "-m", "repro", "audit", *extra],
            capture_output=True, text=True, env=env, timeout=600,
        )

    @staticmethod
    def summary_lines(stdout):
        return [line for line in stdout.splitlines()
                if line.startswith(("GA evaluations:", "A-Res droop"))]

    def test_sigkilled_campaign_resumes_to_identical_stressmark(
        self, tmp_path
    ):
        control = self.cli(*self.ARGS)
        assert control.returncode == 0, control.stderr

        campaign = tmp_path / "campaign"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "audit", *self.ARGS,
             "--checkpoint-dir", str(campaign)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        state_path = campaign / "state.json"
        try:
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if state_path.exists():
                    try:
                        state = json.loads(state_path.read_text())
                    except json.JSONDecodeError:  # mid-replace; re-read
                        state = None
                    if state and state["generation"] >= 1:
                        break
                if victim.poll() is not None:
                    pytest.fail("campaign finished before it could be "
                                "SIGKILLed; raise --generations")
                time.sleep(0.01)
            else:
                pytest.fail("campaign never checkpointed generation 1")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            if victim.poll() is None:
                victim.kill()
            victim.wait(timeout=60)

        resumed = self.cli("--resume", str(campaign))
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming campaign from generation" in resumed.stdout
        assert (self.summary_lines(resumed.stdout)
                == self.summary_lines(control.stdout))
