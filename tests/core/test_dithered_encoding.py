"""Tests for the dithered-program NASM artifact (Section III.B mechanics)."""

import pytest

from repro.core.dithering import DitherSchedule, dither_schedules, encode_dithered_program
from repro.errors import SearchError
from repro.isa import default_table
from repro.workloads.stressmarks import sm_res, stressmark_program

TABLE = default_table()


@pytest.fixture()
def program():
    return stressmark_program(sm_res(TABLE))


class TestDitheredEncoding:
    def test_reference_core_emits_plain_stressmark(self, program):
        schedules = dither_schedules(cores=4, period_cycles=32, m_cycles=320)
        asm = encode_dithered_program(program, schedules[0], name="core0")
        assert "core0_loop:" in asm
        assert "_outer" not in asm

    def test_padding_core_gets_outer_loop_with_nop_padding(self, program):
        schedules = dither_schedules(cores=4, period_cycles=32, m_cycles=320)
        asm = encode_dithered_program(program, schedules[1], name="core1")
        assert "core1_outer:" in asm
        assert "dither padding: 1 cycle(s)" in asm
        assert "dec qword [rsp - 128]" in asm
        assert "jnz core1_outer" in asm
        # One cycle of padding = decode_width NOPs.
        pad_section = asm.split("dither padding")[1]
        nops_before_dec = pad_section.split("dec qword")[0]
        assert nops_before_dec.count("nop") == 4

    def test_approximate_schedule_pads_delta_plus_one_cycles(self, program):
        schedules = dither_schedules(cores=2, period_cycles=32,
                                     m_cycles=320, delta=3)
        asm = encode_dithered_program(program, schedules[1], name="c")
        pad_section = asm.split("dither padding")[1].split("dec qword")[0]
        assert pad_section.count("nop") == 4 * 4  # (delta+1) cycles

    def test_inner_iterations_scale_with_interval(self, program):
        schedules = dither_schedules(cores=3, period_cycles=32, m_cycles=3200)
        asm1 = encode_dithered_program(program, schedules[1], name="a")
        asm2 = encode_dithered_program(program, schedules[2], name="b")
        def inner_count(asm):
            line = next(l for l in asm.splitlines() if "mov rcx," in l)
            return int(line.split(",")[1])
        # Core 2 pads every M*(L+H) cycles: a longer interval -> more inner trips.
        assert inner_count(asm2) > inner_count(asm1)

    def test_outer_iterations_validated(self, program):
        schedule = DitherSchedule(core_index=1, pad_cycles=1, interval_cycles=100)
        with pytest.raises(SearchError):
            encode_dithered_program(program, schedule, outer_iterations=0)

    def test_structure_still_exits_cleanly(self, program):
        schedules = dither_schedules(cores=2, period_cycles=32, m_cycles=320)
        asm = encode_dithered_program(program, schedules[1])
        assert asm.rstrip().endswith("syscall")
