"""Tests for resonance detection, cost functions, and the AUDIT driver."""

import pytest

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.cost import DroopPerPowerCost, MaxDroopCost, SensitivePathCost
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.core.resonance import find_resonance, probe_program
from repro.errors import SearchError
from repro.isa.opcodes import default_table
from repro.pdn.elements import bulldozer_pdn, phenom_pdn
from repro.uarch.config import bulldozer_chip, phenom_chip

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


@pytest.fixture(scope="module")
def resonance(platform):
    return find_resonance(platform, TABLE, threads=1,
                          period_candidates=list(range(16, 73, 8)))


class TestProbeProgram:
    def test_probe_structure(self):
        prog = probe_program(TABLE, hp_count=8, lp_nops=16)
        assert len(prog.kernel.hp) == 8
        assert len(prog.kernel.lp) == 16
        assert all(not i.is_nop for i in prog.kernel.hp)

    def test_probe_uses_highest_energy_opcode_by_default(self):
        prog = probe_program(TABLE, hp_count=2, lp_nops=0)
        assert prog.kernel.hp[0].spec.mnemonic == "vfmaddpd"

    def test_probe_validation(self):
        with pytest.raises(SearchError):
            probe_program(TABLE, hp_count=0, lp_nops=4)
        with pytest.raises(SearchError):
            probe_program(TABLE, hp_count=4, lp_nops=-1)


class TestFindResonance:
    def test_detects_pdn_first_droop(self, resonance):
        assert resonance.resonance_hz == pytest.approx(100e6, rel=0.15)
        assert resonance.best_period_cycles == pytest.approx(32, abs=4)

    def test_peak_dominates_sweep_edges(self, resonance):
        droops = [p.droop_v for p in resonance.points]
        peak = max(droops)
        assert peak > 1.2 * droops[0]
        assert peak > 1.2 * droops[-1]

    def test_phenom_resonates_lower(self):
        chip = phenom_chip()
        platform = MeasurementPlatform(chip, phenom_pdn(vdd=chip.vdd))
        res = find_resonance(platform, TABLE, threads=1,
                             period_candidates=list(range(16, 73, 8)))
        # ~80 MHz at 2.8 GHz -> ~35 cycles.
        assert res.resonance_hz == pytest.approx(80e6, rel=0.2)

    def test_sweep_needs_candidates(self, platform):
        with pytest.raises(SearchError):
            find_resonance(platform, TABLE, period_candidates=[])

    def test_droop_at_lookup(self, resonance):
        point = resonance.points[0]
        assert resonance.droop_at(point.lp_nops) == point.droop_v
        with pytest.raises(SearchError):
            resonance.droop_at(10_001)


class TestCostFunctions:
    def test_max_droop_cost(self, platform):
        m = platform.measure_program(
            probe_program(TABLE, hp_count=32, lp_nops=95), 4)
        assert MaxDroopCost().evaluate(m) == m.max_droop_v

    def test_droop_per_power_penalises_power(self, platform):
        m = platform.measure_program(
            probe_program(TABLE, hp_count=32, lp_nops=95), 4)
        plain = MaxDroopCost().evaluate(m)
        penalised = DroopPerPowerCost(power_weight_v_per_w=1e-3).evaluate(m)
        assert penalised < plain

    def test_sensitive_path_cost_rewards_sensitivity(self, platform):
        m = platform.measure_program(
            probe_program(TABLE, hp_count=32, lp_nops=95,
                          hp_mnemonic="imul"), 4)
        plain = MaxDroopCost().evaluate(m)
        boosted = SensitivePathCost(sensitivity_weight_v=1.0).evaluate(m)
        assert boosted > plain

    def test_cost_validation(self):
        with pytest.raises(SearchError):
            DroopPerPowerCost(power_weight_v_per_w=-1)
        with pytest.raises(SearchError):
            SensitivePathCost(sensitivity_weight_v=-1)


@pytest.mark.slow
class TestAuditRunner:
    def _tiny_config(self, **kw):
        return AuditConfig(
            threads=kw.get("threads", 4),
            mode=kw.get("mode", StressmarkMode.RESONANT),
            ga=GaConfig(population_size=8, generations=4, seed=2,
                        stagnation_patience=12),
            lp_sweep_step=16,
        )

    def test_resonant_run_beats_trivial_probe(self, platform):
        runner = AuditRunner(platform, config=self._tiny_config())
        result = runner.run()
        trivial = platform.measure_program(
            probe_program(TABLE, hp_count=32, lp_nops=95), 4
        ).max_droop_v
        assert result.max_droop_v > 0.8 * trivial
        assert result.name == "A-Res"
        assert len(result.kernel.hp) > 0

    def test_phenom_pool_excludes_fma(self):
        chip = phenom_chip()
        platform = MeasurementPlatform(chip, phenom_pdn(vdd=chip.vdd))
        runner = AuditRunner(platform, config=self._tiny_config())
        assert "vfmaddpd" not in runner.table
        assert "mulpd" in runner.table

    def test_excitation_mode_uses_long_lp(self, platform):
        runner = AuditRunner(
            platform, config=self._tiny_config(mode=StressmarkMode.EXCITATION)
        )
        result = runner.run()
        assert result.name == "A-Ex"
        period = result.resonance.best_period_cycles
        assert result.genome.lp_nops >= period * 8

    def test_config_validation(self):
        with pytest.raises(SearchError):
            AuditConfig(threads=0)
        with pytest.raises(SearchError):
            AuditConfig(subblock_cycles=0)
