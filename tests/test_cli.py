"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.chip == "bulldozer"
        assert args.threads == 4
        assert args.mode == "resonant"
        assert args.asm_out is None

    def test_sweep_chip_choices(self):
        args = build_parser().parse_args(["sweep", "--chip", "phenom"])
        assert args.chip == "phenom"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--chip", "riscv"])

    def test_experiment_takes_name(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_registry_covers_every_paper_artifact(self):
        expected = {
            "fig3", "fig4", "fig6", "fig9", "fig10",
            "table1", "table2", "table3",
            "sec3b", "sec3c", "sec3-data", "sec5a1", "sec5a5", "sec5-sim",
            "sec5-qualify",
        }
        assert set(EXPERIMENTS) == expected

    def test_fast_experiment_runs_end_to_end(self, capsys):
        assert main(["experiment", "sec3b"]) == 0
        out = capsys.readouterr().out
        assert "18.35 min" in out

    def test_sweep_runs_end_to_end(self, capsys):
        assert main(["sweep", "--chip", "bulldozer"]) == 0
        out = capsys.readouterr().out
        assert "resonance:" in out
        assert "MHz" in out

    def test_audit_writes_asm(self, tmp_path, capsys):
        asm_path = tmp_path / "out.asm"
        code = main([
            "audit", "--threads", "2", "--population", "6",
            "--generations", "2", "--asm-out", str(asm_path),
        ])
        assert code == 0
        text = asm_path.read_text()
        assert "BITS 64" in text
        assert "_loop:" in text
        out = capsys.readouterr().out
        assert "droop at 2T" in out

    def test_netlist_export(self, tmp_path):
        deck_path = tmp_path / "deck.sp"
        code = main(["netlist", "--threads", "2", "--periods", "4",
                     "--out", str(deck_path)])
        assert code == 0
        deck = deck_path.read_text()
        assert deck.startswith("* A-Res 2T current profile")
        assert "Iload die 0 PWL(" in deck
        assert deck.rstrip().endswith(".end")

    def test_throttle_rejected_on_phenom(self, capsys):
        code = main(["audit", "--chip", "phenom", "--throttle", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCampaignFlags:
    AUDIT = ["audit", "--threads", "2", "--population", "6",
             "--generations", "2", "--seed", "1"]

    def test_checkpoint_and_resume_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["audit", "--checkpoint-dir", "a", "--resume", "a"])

    def test_fault_flag_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.eval_retries is None
        assert args.eval_timeout is None
        assert args.on_fault is None
        assert args.eval_backoff == 0.0

    def test_checkpoint_dir_writes_meta_and_state(self, tmp_path, capsys):
        campaign = tmp_path / "campaign"
        code = main([*self.AUDIT, "--checkpoint-dir", str(campaign)])
        assert code == 0
        import json

        meta = json.loads((campaign / "meta.json").read_text())
        assert meta["chip"] == "bulldozer"
        assert meta["population"] == 6
        assert meta["seed"] == 1
        state = json.loads((campaign / "state.json").read_text())
        assert state["generation"] == 1  # last generation boundary
        capsys.readouterr()

    def test_resume_reproduces_the_uninterrupted_run(self, tmp_path, capsys):
        assert main(self.AUDIT) == 0
        control = capsys.readouterr().out

        campaign = tmp_path / "campaign"
        assert main([*self.AUDIT, "--checkpoint-dir", str(campaign)]) == 0
        capsys.readouterr()
        # Resume overrides its own flags from the stored meta, so even a
        # contradictory command line continues the original campaign; the
        # banked generations are replayed from the fitness cache.
        code = main(["audit", "--population", "99", "--seed", "42",
                     "--resume", str(campaign)])
        assert code == 0
        resumed = capsys.readouterr().out
        assert "resuming campaign from generation 1" in resumed

        def summary(out):
            return [line for line in out.splitlines()
                    if line.startswith(("GA evaluations:", "A-Res droop"))]

        assert summary(resumed) == summary(control)

    def test_resume_empty_directory_fails_cleanly(self, tmp_path, capsys):
        code = main(["audit", "--resume", str(tmp_path / "nothing")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_fault_flags_build_a_policy(self, capsys):
        code = main([*self.AUDIT, "--eval-retries", "3",
                     "--on-fault", "penalize", "--telemetry"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault retries" in out
        assert "quarantined genomes" in out

    def test_no_fault_flags_means_no_policy(self):
        from repro.cli import _fault_policy

        args = build_parser().parse_args(["audit"])
        assert _fault_policy(args) is None
        args = build_parser().parse_args(["audit", "--on-fault", "skip"])
        policy = _fault_policy(args)
        assert policy is not None
        assert policy.on_exhaust == "skip"
        assert policy.max_retries == 2

    def test_qualify_flag_defaults_off(self):
        args = build_parser().parse_args(["audit"])
        assert args.qualify is False
        args = build_parser().parse_args(["audit", "--qualify"])
        assert args.qualify is True


class TestQualifyCommand:
    QUALIFY = ["qualify", "a-res", "--threads", "2", "--jitter-repeats", "1",
               "--supply-points", "1"]

    def test_unknown_stressmark_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["qualify", "nonsense"])

    def test_qualify_runs_end_to_end(self, capsys):
        assert main(self.QUALIFY) == 0
        out = capsys.readouterr().out
        assert "qualification — a-res" in out
        assert "verdict: " in out
        assert "evaluations" in out

    def test_qualify_checkpoint_resumes_from_bank(self, tmp_path, capsys):
        bank = [*self.QUALIFY, "--checkpoint-dir", str(tmp_path)]
        assert main(bank) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "qualify_a-res.json").exists()
        assert main(bank) == 0
        resumed = capsys.readouterr().out
        assert "0 evaluations" in resumed
        assert resumed.splitlines()[0] == first.splitlines()[0]


class TestExitCodes:
    def test_configuration_error_exits_2(self, capsys):
        code = main(["qualify", "a-res", "--pdn-tolerance", "2.0"])
        assert code == 2
        assert "configuration error:" in capsys.readouterr().err

    def test_fault_exhaustion_exits_3(self, capsys, monkeypatch):
        from repro.core.faults import QuarantineExhaustedError

        def explode(*_args, **_kwargs):
            raise QuarantineExhaustedError(
                "evaluation failed on all 3 attempts")

        monkeypatch.setattr("repro.cli._platform", explode)
        assert main(["sweep"]) == 3
        assert "fault policy exhausted:" in capsys.readouterr().err

    def test_invariant_violation_exits_4(self, capsys, monkeypatch):
        from repro.errors import InvariantViolation

        def explode(*_args, **_kwargs):
            raise InvariantViolation("voltage-finite", "platform",
                                     "NaN at sample 3")

        monkeypatch.setattr("repro.cli._platform", explode)
        assert main(["sweep"]) == 4
        err = capsys.readouterr().err
        assert "invariant violation:" in err
        assert "[platform/voltage-finite]" in err

    def test_crash_exits_70_with_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)

        def explode(*_args, **_kwargs):
            raise RuntimeError("simulated meltdown")

        monkeypatch.setattr("repro.cli._platform", explode)
        assert main(["sweep"]) == 70
        err = capsys.readouterr().err
        assert "internal error: RuntimeError: simulated meltdown" in err
        assert "crash report: crash_report.json" in err
        report_path = tmp_path / "crash_report.json"
        assert report_path.exists()
        import json

        report = json.loads(report_path.read_text())
        assert report["command"] == "sweep"
        assert report["error"] == "RuntimeError: simulated meltdown"
        assert "simulated meltdown" in report["traceback"]
        assert isinstance(report["recent_events"], list)

    def test_crash_report_lands_next_to_checkpoint(self, tmp_path, capsys,
                                                   monkeypatch):
        campaign = tmp_path / "campaign"

        def explode(*_args, **_kwargs):
            raise RuntimeError("mid-campaign crash")

        monkeypatch.setattr("repro.cli._platform", explode)
        code = main(["audit", "--checkpoint-dir", str(campaign)])
        assert code == 70
        assert (campaign / "crash_report.json").exists()
        capsys.readouterr()
