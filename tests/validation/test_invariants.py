"""Tests for the runtime invariant guards (the validation layer).

The acceptance bar: every guard in the catalog fires as a structured
:class:`InvariantViolation` — never as a finite fitness, a silent NaN,
or an unrelated crash — and clean traces pass through untouched.
"""

import numpy as np
import pytest

from repro.core.platform import Measurement
from repro.errors import InvariantViolation
from repro.experiments.setup import bulldozer_testbed
from repro.pdn.elements import bulldozer_pdn
from repro.pdn.network import PdnNetwork
from repro.pdn.transient import TransientSolver, VoltageTrace
from repro.power.trace import CurrentTrace
from repro.uarch.module import ModuleTrace
from repro.validation import (
    GUARD_CATALOG,
    check_current_samples,
    check_measurement,
    check_module_trace,
    check_sensitivity,
    check_time_axis,
    check_voltage_samples,
)

DT = 1 / 3.2e9
VDD = 1.2


def fired(check, *args, **kwargs) -> InvariantViolation:
    with pytest.raises(InvariantViolation) as excinfo:
        check(*args, **kwargs)
    return excinfo.value


def module_trace(energy, sensitivity) -> ModuleTrace:
    return ModuleTrace(
        energy_pj=np.asarray(energy, dtype=np.float64),
        sensitivity=np.asarray(sensitivity, dtype=np.float64),
        iter_start_cycles=((0,),),
        cycles=max(len(energy), 1),
    )


def measurement(voltage=None, current=None, sensitivity=None,
                current_dt=DT) -> Measurement:
    volts = np.full(8, VDD) if voltage is None else np.asarray(voltage)
    amps = np.full(8, 5.0) if current is None else np.asarray(current)
    sens = np.zeros(8) if sensitivity is None else np.asarray(sensitivity)
    return Measurement(
        voltage=VoltageTrace(volts, DT, VDD),
        sensitivity=sens,
        current=CurrentTrace(amps, current_dt),
        period_cycles=8,
        supply_v=VDD,
    )


# ----------------------------------------------------------------------
# Each guard in the catalog fires with its own name and layer
# ----------------------------------------------------------------------
class TestGuards:
    def test_current_finite(self):
        error = fired(check_current_samples,
                      np.array([1.0, np.nan]), layer="pdn")
        assert (error.guard, error.layer) == ("current-finite", "pdn")

    def test_current_bounds(self):
        error = fired(check_current_samples,
                      np.array([1.0, -0.5]), layer="pdn")
        assert error.guard == "current-bounds"

    def test_voltage_finite(self):
        for bad in (np.nan, np.inf, -np.inf):
            error = fired(check_voltage_samples,
                          np.array([1.2, bad]), supply_v=VDD, layer="platform")
            assert error.guard == "voltage-finite"

    def test_voltage_bounds(self):
        error = fired(check_voltage_samples,
                      np.array([1.2, -0.1]), supply_v=VDD, layer="platform")
        assert error.guard == "voltage-bounds"
        error = fired(check_voltage_samples,
                      np.array([1.2, 2.5 * VDD]), supply_v=VDD, layer="pdn")
        assert (error.guard, error.layer) == ("voltage-bounds", "pdn")

    def test_sensitivity(self):
        assert fired(check_sensitivity, np.array([np.inf]),
                     layer="platform").guard == "sensitivity"
        assert fired(check_sensitivity, np.array([-1.0]),
                     layer="platform").guard == "sensitivity"

    def test_time_axis(self):
        assert fired(check_time_axis, 0.0, layer="platform").guard == "time-axis"
        assert fired(check_time_axis, -DT, layer="platform").guard == "time-axis"
        assert fired(check_time_axis, float("nan"),
                     layer="platform").guard == "time-axis"
        assert fired(check_time_axis, DT, 2 * DT,
                     layer="platform").guard == "time-axis"

    def test_module_energy(self):
        assert fired(check_module_trace,
                     module_trace([1.0, np.nan], [0.0, 0.0])
                     ).guard == "module-energy"
        assert fired(check_module_trace,
                     module_trace([1.0, -2.0], [0.0, 0.0])
                     ).guard == "module-energy"

    def test_module_length(self):
        error = fired(check_module_trace, module_trace([1.0, 1.0], [0.0]))
        assert (error.guard, error.layer) == ("module-length", "uarch")

    def test_module_activity(self):
        error = fired(check_module_trace,
                      module_trace([0.0, 0.0], [0.0, 0.0]))
        assert error.guard == "module-activity"

    def test_trace_length(self):
        error = fired(check_measurement, measurement(sensitivity=np.zeros(5)))
        assert (error.guard, error.layer) == ("trace-length", "platform")

    def test_clean_inputs_pass(self):
        check_current_samples(np.array([0.0, 3.0]), layer="pdn")
        check_voltage_samples(np.array([1.1, 1.3]), supply_v=VDD,
                              layer="platform")
        check_sensitivity(np.zeros(4), layer="platform")
        check_time_axis(DT, DT, layer="platform")
        check_module_trace(module_trace([1.0, 2.0], [0.0, 0.5]))
        check_measurement(measurement())

    def test_every_catalog_guard_is_exercised_above(self):
        """The catalog and this test class must not drift apart."""
        exercised = {
            "current-finite", "current-bounds", "voltage-finite",
            "voltage-bounds", "sensitivity", "time-axis", "module-energy",
            "module-length", "module-activity", "trace-length",
        }
        assert exercised == set(GUARD_CATALOG)

    def test_violation_message_names_guard_and_layer(self):
        error = fired(check_current_samples, np.array([np.nan]), layer="pdn")
        assert "[pdn/current-finite]" in str(error)


# ----------------------------------------------------------------------
# Composite checks dispatch to the right sub-guard
# ----------------------------------------------------------------------
class TestCheckMeasurement:
    def test_dt_mismatch_is_time_axis(self):
        error = fired(check_measurement, measurement(current_dt=2 * DT))
        assert error.guard == "time-axis"

    def test_nan_voltage_is_voltage_finite(self):
        volts = np.full(8, VDD)
        volts[3] = np.nan
        assert fired(check_measurement,
                     measurement(voltage=volts)).guard == "voltage-finite"

    def test_negative_current_is_current_bounds(self):
        amps = np.full(8, 5.0)
        amps[0] = -1.0
        assert fired(check_measurement,
                     measurement(current=amps)).guard == "current-bounds"


# ----------------------------------------------------------------------
# Guards wired into the layers
# ----------------------------------------------------------------------
class TestLayerWiring:
    def test_pdn_solver_rejects_nan_current(self):
        solver = TransientSolver(PdnNetwork(bulldozer_pdn()), DT)
        samples = np.full(64, 3.0)
        samples[10] = np.nan
        error = fired(solver.simulate, CurrentTrace(samples, DT))
        assert (error.guard, error.layer) == ("current-finite", "pdn")

    def test_pdn_solver_rejects_negative_current(self):
        solver = TransientSolver(PdnNetwork(bulldozer_pdn()), DT)
        error = fired(solver.steady_state_periodic,
                      CurrentTrace(np.array([-1.0, 2.0]), DT))
        assert (error.guard, error.layer) == ("current-bounds", "pdn")

    def test_platform_measurement_is_guarded(self):
        """A real end-to-end measurement passes every platform guard."""
        platform = bulldozer_testbed()
        from repro.core.resonance import probe_program
        from repro.isa.opcodes import default_table

        program = probe_program(default_table(), hp_count=8, lp_nops=8)
        result = platform.measure_program(program, 2)
        check_measurement(result)  # idempotent: already ran inside
