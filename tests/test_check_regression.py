"""Tests for the CI benchmark-regression gate comparator."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"
BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "bulldozer.json"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def baseline(gate):
    return {
        "schema_version": gate.SCHEMA_VERSION,
        "scenario": dict(gate.DEFAULT_SCENARIO),
        "metrics": {
            "max_droop_v": 0.08127,
            "best_fitness": 0.08127,
            "evaluations": 41,
            "resonance_hz": 2.3e6,
            "evals_per_second": 10.0,
            "eval_wall_s": 4.1,
            "cache_hit_rate": 0.3,
            "qualify_verdict": "PASS",
            "qualify_robustness": 0.9,
            "qualify_evaluations": 23,
            "qualify_evals_per_second": 18.0,
            "batched_pdn_speedup": 4.0,
            "batched_droop_match": True,
            "batched_rows": 32,
            "fleet_shard_throughput_ratio": 0.97,
            "fleet_droop_match": True,
            "fleet_shards": 2,
            "registry_publish_overhead": 0.002,
            "registry_records": 2,
            "registry_verify_match": True,
            "obs_overhead": 0.005,
            "obs_droop_match": True,
            "obs_spans": 32,
        },
    }


class TestCompare:
    def test_identical_metrics_pass(self, gate, baseline):
        assert gate.compare(baseline, copy.deepcopy(baseline)) == []

    def test_throughput_wobble_within_tolerance_passes(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["evals_per_second"] = 9.0  # -10 %
        assert gate.compare(baseline, current, tolerance=0.15) == []

    def test_throughput_improvement_passes(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["evals_per_second"] = 20.0
        assert gate.compare(baseline, current) == []

    def test_2x_slowdown_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["evals_per_second"] = 5.0
        problems = gate.compare(baseline, current, tolerance=0.15)
        assert len(problems) == 1
        assert "evals_per_second regressed 50.0 %" in problems[0]

    def test_qualify_slowdown_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["qualify_evals_per_second"] = 9.0  # -50 %
        problems = gate.compare(baseline, current, tolerance=0.15)
        assert len(problems) == 1
        assert "qualify_evals_per_second regressed 50.0 %" in problems[0]

    @pytest.mark.parametrize("metric", [
        "max_droop_v", "best_fitness", "evaluations", "resonance_hz",
        "qualify_robustness", "qualify_evaluations",
    ])
    def test_any_determinism_drift_fails(self, gate, baseline, metric):
        current = copy.deepcopy(baseline)
        current["metrics"][metric] = current["metrics"][metric] * 1.000001
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert metric in problems[0]

    def test_verdict_flip_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["qualify_verdict"] = "ARTIFACT"
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "qualify_verdict" in problems[0]

    def test_tiny_droop_change_fails_even_inside_throughput_band(
        self, gate, baseline
    ):
        """Droop has no tolerance band: exact or fail."""
        current = copy.deepcopy(baseline)
        current["metrics"]["max_droop_v"] += 1e-9
        assert gate.compare(baseline, current, tolerance=1.0)

    def test_scenario_change_demands_rebaseline(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["scenario"]["population"] = 24
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "--update" in problems[0]

    def test_schema_change_demands_rebaseline(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["schema_version"] = 999
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "--update" in problems[0]

    def test_batched_speedup_below_floor_fails(self, gate, baseline):
        """The 2x floor is absolute, not relative to the baseline value."""
        current = copy.deepcopy(baseline)
        current["metrics"]["batched_pdn_speedup"] = 1.4
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "batched_pdn_speedup below floor" in problems[0]

    def test_batched_speedup_at_floor_passes(self, gate, baseline):
        baseline["metrics"]["batched_pdn_speedup"] = 9.0
        current = copy.deepcopy(baseline)
        current["metrics"]["batched_pdn_speedup"] = 2.0
        assert gate.compare(baseline, current) == []

    def test_batched_droop_mismatch_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["batched_droop_match"] = False
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "batched_droop_match" in problems[0]

    def test_fleet_throughput_below_floor_fails(self, gate, baseline):
        """Fleet overhead floor is absolute, like the batched speedup."""
        current = copy.deepcopy(baseline)
        current["metrics"]["fleet_shard_throughput_ratio"] = 0.5
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "fleet_shard_throughput_ratio below floor" in problems[0]

    def test_fleet_droop_mismatch_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["fleet_droop_match"] = False
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "fleet_droop_match" in problems[0]

    def test_registry_overhead_above_ceiling_fails(self, gate, baseline):
        """The 5 % publish-overhead ceiling is absolute, like the floors."""
        current = copy.deepcopy(baseline)
        current["metrics"]["registry_publish_overhead"] = 0.08
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "registry_publish_overhead above ceiling" in problems[0]

    def test_registry_overhead_wobble_below_ceiling_passes(self, gate,
                                                           baseline):
        """Publish timing is noisy; only the ceiling gates it."""
        current = copy.deepcopy(baseline)
        current["metrics"]["registry_publish_overhead"] = 0.04
        assert gate.compare(baseline, current) == []

    def test_registry_verify_mismatch_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["registry_verify_match"] = False
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "registry_verify_match" in problems[0]

    def test_obs_overhead_above_ceiling_fails(self, gate, baseline):
        """The 3 % tracing-overhead ceiling is absolute, like the floors."""
        current = copy.deepcopy(baseline)
        current["metrics"]["obs_overhead"] = 0.05
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "obs_overhead above ceiling" in problems[0]

    def test_obs_overhead_wobble_below_ceiling_passes(self, gate, baseline):
        """Overhead timing is noisy; only the ceiling gates it."""
        current = copy.deepcopy(baseline)
        current["metrics"]["obs_overhead"] = 0.025
        assert gate.compare(baseline, current) == []

    def test_obs_droop_mismatch_fails(self, gate, baseline):
        """Tracing that perturbs the physics is an exact-metric failure."""
        current = copy.deepcopy(baseline)
        current["metrics"]["obs_droop_match"] = False
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "obs_droop_match" in problems[0]

    def test_obs_span_count_drift_fails(self, gate, baseline):
        current = copy.deepcopy(baseline)
        current["metrics"]["obs_spans"] = 31
        problems = gate.compare(baseline, current)
        assert len(problems) == 1
        assert "obs_spans" in problems[0]


class TestSummaryMarkdown:
    def test_pass_renders_metric_table(self, gate, baseline):
        markdown = gate.summary_markdown(baseline, [])
        assert "Status: ✅ passed" in markdown
        assert "| max_droop_v | 0.08127 |" in markdown
        assert "| fleet_shards | 2 |" in markdown

    def test_failures_listed(self, gate, baseline):
        markdown = gate.summary_markdown(baseline, ["droop drifted"])
        assert "Status: ❌ failed (1)" in markdown
        assert "- ❌ droop drifted" in markdown


class TestCommittedBaseline:
    def test_baseline_exists_and_matches_schema(self, gate):
        payload = json.loads(BASELINE.read_text())
        assert payload["schema_version"] == gate.SCHEMA_VERSION
        assert payload["scenario"] == gate.DEFAULT_SCENARIO
        for metric in gate.EXACT_METRICS + ("evals_per_second",):
            assert metric in payload["metrics"]
        for metric in gate.FLOOR_METRICS:
            assert metric in payload["metrics"]
        for metric in gate.CEILING_METRICS:
            assert metric in payload["metrics"]

    def test_baseline_registry_path_holds_its_ceiling(self, gate):
        metrics = json.loads(BASELINE.read_text())["metrics"]
        assert metrics["registry_verify_match"] is True
        assert (metrics["registry_publish_overhead"]
                <= gate.CEILING_METRICS["registry_publish_overhead"])

    def test_baseline_batched_path_holds_its_floor(self, gate):
        metrics = json.loads(BASELINE.read_text())["metrics"]
        assert metrics["batched_droop_match"] is True
        assert (metrics["batched_pdn_speedup"]
                >= gate.FLOOR_METRICS["batched_pdn_speedup"])

    def test_baseline_obs_path_holds_its_ceiling(self, gate):
        metrics = json.loads(BASELINE.read_text())["metrics"]
        assert metrics["obs_droop_match"] is True
        assert (metrics["obs_overhead"]
                <= gate.CEILING_METRICS["obs_overhead"])

    def test_baseline_droop_is_plausible(self):
        metrics = json.loads(BASELINE.read_text())["metrics"]
        assert 0.01 < metrics["max_droop_v"] < 0.3
        assert metrics["evaluations"] > 0


@pytest.mark.slow
class TestEndToEnd:
    def test_slowdown_leaves_results_identical_but_throughput_lower(
        self, gate
    ):
        scenario = {"chip": "bulldozer", "threads": 2, "population": 6,
                    "generations": 2, "seed": 1}
        clean = gate.collect_metrics(scenario)
        slowed = gate.collect_metrics(scenario, slowdown=3.0)
        for metric in gate.EXACT_METRICS:
            assert clean["metrics"][metric] == slowed["metrics"][metric]
        assert (slowed["metrics"]["evals_per_second"]
                < clean["metrics"]["evals_per_second"])
        assert gate.compare(clean, slowed)  # the gate trips

    def test_fresh_run_matches_committed_determinism_metrics(self, gate):
        """The committed baseline reproduces bit-exactly on this machine."""
        committed = json.loads(BASELINE.read_text())
        fresh = gate.collect_metrics(committed["scenario"])
        for metric in gate.EXACT_METRICS:
            assert fresh["metrics"][metric] == committed["metrics"][metric]
