"""The tentpole acceptance test: a campaign survives hangs and aborts.

Workers measure through a :class:`FaultInjectingBackend` armed with
hang-forever and worker-abort (``os._exit``) injections.  The supervised
executor must kill stuck workers at the hard deadline, respawn the pool
after crashes, hand the poisoned genomes to the fault policy's
quarantine, and still complete the campaign.
"""

import pytest

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.faults import FaultInjectingBackend, FaultInjectionConfig, FaultPolicy
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.core.telemetry import TelemetryCollector
from repro.experiments.setup import bulldozer_testbed
from repro.supervision import SupervisedExecutor

#: Hash-targeted hard-fault rates: deterministic per genome, so a given
#: seed yields the same chaos schedule in every run and on every respawn.
CHAOS = FaultInjectionConfig(
    seed=2,
    abort_rate=0.18,
    hang_forever_rate=0.12,
    hang_forever_s=3600.0,
)

CONFIG = AuditConfig(
    threads=2,
    mode=StressmarkMode.RESONANT,
    ga=GaConfig(population_size=8, generations=2, seed=5),
)


# Module-level so worker processes can rebuild the chaotic platform.
def chaotic_platform():
    return MeasurementPlatform(
        backend=FaultInjectingBackend(bulldozer_testbed().backend,
                                      config=CHAOS)
    )


@pytest.mark.slow
class TestChaosCampaign:
    def test_campaign_completes_under_hangs_and_aborts(self):
        collector = TelemetryCollector()
        executor = SupervisedExecutor(
            2,
            task_timeout_s=3.0,
            max_pool_rebuilds=30,
            poll_s=0.05,
            observers=[collector],
        )
        # The parent keeps a clean platform (resonance hunt and final
        # verification run in-process); only workers see the chaos.
        runner = AuditRunner(
            bulldozer_testbed(),
            config=CONFIG,
            executor=executor,
            observers=[collector],
            platform_factory=chaotic_platform,
            fault_policy=FaultPolicy(max_retries=0, on_exhaust="skip"),
        )
        try:
            result = runner.run()
        finally:
            executor.close()

        # The campaign finished with a real winner despite the chaos.
        assert result.max_droop_v > 0
        assert result.ga_result.best_fitness > float("-inf")
        # Both injection kinds actually fired and were supervised.
        assert collector.supervisor_hangs >= 1, "no hang was injected/killed"
        assert collector.supervisor_crashes >= 1, "no worker abort was seen"
        assert collector.supervisor_respawns >= 2
        # Poisoned genomes landed in quarantine, not in the result.
        assert collector.quarantines >= 1
