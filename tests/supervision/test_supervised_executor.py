"""SupervisedExecutor: hard deadlines, crash recovery, rebuild budgets."""

import os
import time

import pytest

from repro.core.telemetry import TelemetryCollector
from repro.errors import ConfigurationError
from repro.supervision import (
    SupervisedExecutor,
    SupervisionExhaustedError,
    SupervisorFault,
)


# Module-level so the process pool can pickle it.  Each item is a
# (kind, payload) pair dispatched to the matching behaviour.
def dispatch(item):
    kind, payload = item
    if kind == "ok":
        return payload * 2
    if kind == "sleep":
        time.sleep(payload)
        return payload
    if kind == "abort":
        os._exit(86)
    if kind == "raise":
        raise ValueError(f"boom {payload}")
    raise AssertionError(f"unknown kind {kind!r}")


def executor(**kwargs):
    kwargs.setdefault("poll_s", 0.05)
    return SupervisedExecutor(2, **kwargs)


class TestOrdinaryOperation:
    def test_map_preserves_order(self):
        pool = executor()
        try:
            items = [("ok", i) for i in range(7)]
            assert pool.map(dispatch, items) == [i * 2 for i in range(7)]
        finally:
            pool.close()

    def test_empty_map(self):
        pool = executor()
        try:
            assert pool.map(dispatch, []) == []
        finally:
            pool.close()

    def test_task_exception_propagates_unwrapped(self):
        pool = executor()
        with pytest.raises(ValueError, match="boom"):
            pool.map(dispatch, [("ok", 1), ("raise", 1)])

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(0)
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(2, task_timeout_s=0)
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(2, max_pool_rebuilds=-1)


class TestHangSupervision:
    def test_hung_task_killed_and_sentineled(self):
        collector = TelemetryCollector()
        pool = executor(task_timeout_s=0.5, observers=[collector])
        try:
            results = pool.map(
                dispatch, [("ok", 1), ("sleep", 60.0), ("ok", 3)]
            )
        finally:
            pool.close()
        assert results[0] == 2
        assert results[2] == 6
        fault = results[1]
        assert isinstance(fault, SupervisorFault)
        assert fault.kind == "hang"
        assert "hung" in fault.error
        assert collector.supervisor_hangs >= 1
        assert collector.supervisor_respawns >= 1

    def test_innocents_survive_the_pool_kill(self):
        """Tasks killed alongside a hang are requeued, not lost."""
        pool = executor(task_timeout_s=0.5)
        try:
            items = [("sleep", 60.0)] + [("ok", i) for i in range(6)]
            results = pool.map(dispatch, items)
        finally:
            pool.close()
        assert isinstance(results[0], SupervisorFault)
        assert results[1:] == [i * 2 for i in range(6)]


class TestCrashSupervision:
    def test_crasher_isolated_and_sentineled(self):
        collector = TelemetryCollector()
        pool = executor(observers=[collector], crash_retries=1)
        try:
            results = pool.map(
                dispatch, [("ok", 1), ("abort", 0), ("ok", 3), ("ok", 4)]
            )
        finally:
            pool.close()
        fault = results[1]
        assert isinstance(fault, SupervisorFault)
        assert fault.kind == "crash"
        # A deterministic crasher gets 1 + crash_retries executions.
        assert fault.attempts == 2
        assert [results[0], results[2], results[3]] == [2, 6, 8]
        assert collector.supervisor_crashes >= 1

    def test_rebuild_budget_exhaustion_raises(self):
        pool = executor(max_pool_rebuilds=0)
        with pytest.raises(SupervisionExhaustedError):
            pool.map(dispatch, [("abort", 0), ("ok", 1)])
