"""Graceful shutdown: signals, wall-clock budgets, and CLI exit 75."""

import os
import signal

import pytest

from repro.cli._main import main
from repro.core.telemetry import TelemetryCollector
from repro.errors import EXIT_INTERRUPTED, ConfigurationError
from repro.supervision import ShutdownCoordinator


class TestShutdownCoordinator:
    def test_no_triggers_means_no_stop(self):
        coordinator = ShutdownCoordinator()
        assert coordinator.stop_requested() is None

    def test_wall_clock_budget_trips_and_sticks(self):
        collector = TelemetryCollector()
        coordinator = ShutdownCoordinator(
            max_wall_clock_s=0.0, observers=[collector]
        )
        reason = coordinator.stop_requested()
        assert reason is not None
        assert "wall-clock" in reason
        # Sticky, and announced exactly once.
        assert coordinator.stop_requested() == reason
        assert collector.shutdown_reason == reason

    def test_programmatic_request(self):
        coordinator = ShutdownCoordinator()
        coordinator.request("maintenance window")
        assert coordinator.stop_requested() == "maintenance window"
        # First request wins.
        coordinator.request("second thoughts")
        assert coordinator.stop_requested() == "maintenance window"

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ShutdownCoordinator(max_wall_clock_s=-1.0)

    def test_sigterm_requests_graceful_stop(self):
        with ShutdownCoordinator() as coordinator:
            os.kill(os.getpid(), signal.SIGTERM)
            assert coordinator.stop_requested() == "signal SIGTERM"

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with ShutdownCoordinator():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before


class TestCliMaxWallClock:
    ARGS = ["audit", "--chip", "bulldozer", "--threads", "2",
            "--population", "4", "--generations", "2", "--seed", "1"]

    def test_budget_overrun_exits_75_and_is_resumable(self, tmp_path, capsys):
        store = str(tmp_path / "campaign")
        code = main(self.ARGS + ["--checkpoint-dir", store,
                                 "--max-wall-clock", "0"])
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED == 75
        assert "interrupted" in captured.err
        # The generation-0 snapshot landed before the stop, so the very
        # same campaign resumes to completion.
        code = main(["audit", "--resume", store])
        assert code == 0
        assert "droop" in capsys.readouterr().out
