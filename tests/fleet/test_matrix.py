"""Scenario matrix expansion, parsing, and spec loading."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet.matrix import (
    Scenario,
    ScenarioMatrix,
    load_spec,
    parse_budget,
    parse_pdn_label,
)
from repro.fleet.orchestrator import chain_schedule


class TestPdnLabels:
    def test_nominal_is_unity(self):
        assert parse_pdn_label("nominal") == 1.0

    @pytest.mark.parametrize("label,scale", [
        ("+10%", 1.10), ("-5%", 0.95), ("+0%", 1.0), ("-12.5%", 0.875),
    ])
    def test_signed_percentages(self, label, scale):
        assert parse_pdn_label(label) == pytest.approx(scale)

    @pytest.mark.parametrize("label", ["10%", "fast", "", "+%", "+10"])
    def test_bad_labels_rejected(self, label):
        with pytest.raises(ConfigurationError):
            parse_pdn_label(label)

    def test_tolerance_beyond_bound_rejected(self):
        with pytest.raises(ConfigurationError, match="different\\s+board"):
            parse_pdn_label("+60%")


class TestBudgets:
    def test_pop_x_gen(self):
        assert parse_budget("12x8") == (12, 8)

    @pytest.mark.parametrize("label", ["12", "x", "12x", "ax8", "1x8", "4x0"])
    def test_bad_budgets_rejected(self, label):
        with pytest.raises(ConfigurationError):
            parse_budget(label)


class TestScenario:
    def test_id_is_deterministic_and_filesystem_safe(self):
        scenario = Scenario(chip="phenom", pdn="+10%", threads=2,
                            budget="8x4", mode="excitation", seed=7)
        assert scenario.scenario_id == "phenom-pdn-p10-t2-b8x4-excitation-s7"

    def test_platform_key_ignores_budget_and_seed(self):
        a = Scenario(budget="8x4", seed=1)
        b = Scenario(budget="16x10", seed=9)
        assert a.platform_key == b.platform_key

    @pytest.mark.parametrize("kwargs", [
        {"chip": "alpha"}, {"mode": "chaos"}, {"threads": 0},
        {"pdn": "broken"}, {"budget": "0x0"},
    ])
    def test_bad_axis_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Scenario(**kwargs)


class TestMatrixExpansion:
    def test_axis_product(self):
        matrix = ScenarioMatrix(chip=("bulldozer", "phenom"),
                                threads=(2, 4), seed=(1, 2))
        assert len(matrix) == 8
        ids = [s.scenario_id for s in matrix.expand()]
        assert len(set(ids)) == 8

    def test_values_deduplicated_order_preserved(self):
        matrix = ScenarioMatrix(seed=(3, 1, 3, 1, 2))
        assert matrix.seed == (3, 1, 2)
        assert len(matrix) == 3

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ScenarioMatrix(chip=())

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown matrix axis"):
            ScenarioMatrix.from_dict({"frequency": [1]})

    def test_non_integer_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioMatrix(threads=("four",))

    def test_platform_key_groups_are_contiguous(self):
        matrix = ScenarioMatrix(chip=("bulldozer", "phenom"),
                                pdn=("nominal", "+10%"),
                                budget=("4x2", "8x4"), seed=(1, 2))
        keys = [s.platform_key for s in matrix.expand()]
        seen = []
        for key in keys:
            if not seen or seen[-1] != key:
                assert key not in seen, "platform group split apart"
                seen.append(key)
        chains = chain_schedule(matrix.expand())
        assert sum(len(chain) for chain in chains) == len(matrix)
        assert len(chains) == 4  # 2 chips x 2 pdn variants


class TestCliParsing:
    def test_axes_parsed_and_merged(self):
        matrix = ScenarioMatrix.from_cli([
            "chip=bulldozer,phenom", "threads=2,4", "seed=1", "seed=2",
        ])
        assert matrix.chip == ("bulldozer", "phenom")
        assert matrix.threads == (2, 4)
        assert matrix.seed == (1, 2)

    @pytest.mark.parametrize("entry", ["chip", "chip=", "=x", "threads=two"])
    def test_bad_entries_rejected(self, entry):
        with pytest.raises(ConfigurationError):
            ScenarioMatrix.from_cli([entry])


class TestSpecFiles:
    def test_toml_spec(self, tmp_path):
        spec = tmp_path / "fleet.toml"
        spec.write_text(
            '[matrix]\nchip = ["bulldozer", "phenom"]\nseed = [1, 2]\n'
            "\n[fleet]\nworkers = 3\nqualify = true\n"
        )
        matrix, options = load_spec(spec)
        assert len(matrix) == 4
        assert options == {"workers": 3, "qualify": True}

    def test_json_spec(self, tmp_path):
        spec = tmp_path / "fleet.json"
        spec.write_text(json.dumps(
            {"matrix": {"chip": "bulldozer", "threads": [2, 4]}}
        ))
        matrix, options = load_spec(spec)
        assert matrix.threads == (2, 4)
        assert options == {}

    def test_missing_matrix_table_rejected(self, tmp_path):
        spec = tmp_path / "fleet.toml"
        spec.write_text('[fleet]\nworkers = 2\n')
        with pytest.raises(ConfigurationError, match="matrix"):
            load_spec(spec)

    def test_unknown_fleet_option_rejected(self, tmp_path):
        spec = tmp_path / "fleet.toml"
        spec.write_text('[matrix]\nseed = [1]\n\n[fleet]\nturbo = true\n')
        with pytest.raises(ConfigurationError, match="turbo"):
            load_spec(spec)

    def test_unreadable_spec_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec(tmp_path / "absent.toml")
