"""End-to-end fleet runs: determinism, resume bit-identity, exit taxonomy."""

import json
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.faults import FaultPolicy
from repro.errors import (
    EXIT_CRASH,
    EXIT_FAILURE,
    EXIT_FAULTS,
    EXIT_OK,
)
from repro.fleet import FleetOrchestrator, ScenarioMatrix
from repro.fleet.report import REPORT_FILE, REPORT_MD_FILE

#: One chain of three same-platform shards (cache seeding active) — small
#: enough for CI, large enough that a kill can land mid-fleet.
MATRIX = ScenarioMatrix(chip=("bulldozer",), threads=(1,),
                        budget=("4x2",), seed=(1, 2, 3))


def run_fleet(fleet_dir, *, workers=1, stop_after=None, matrix=MATRIX):
    orchestrator = FleetOrchestrator(
        matrix, fleet_dir, workers=workers, stop_after=stop_after,
    )
    return orchestrator.run()


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    """An uninterrupted serial fleet: the reference report."""
    fleet_dir = tmp_path_factory.mktemp("fleet-control")
    report = run_fleet(fleet_dir)
    return report, (fleet_dir / REPORT_FILE).read_text()


class TestFleetRun:
    def test_complete_fleet_reports_every_shard(self, control):
        report, _ = control
        assert report.exit_code == EXIT_OK
        assert report.complete
        assert len(report.ok_shards) == len(MATRIX)
        assert report.best_per_platform()

    def test_report_files_written(self, control, tmp_path):
        report = run_fleet(tmp_path / "fleet")
        assert (tmp_path / "fleet" / REPORT_FILE).exists()
        assert (tmp_path / "fleet" / REPORT_MD_FILE).exists()
        assert report.to_json() == control[1]

    def test_worker_count_does_not_change_the_report(self, control, tmp_path):
        run_fleet(tmp_path / "fleet", workers=2)
        assert (tmp_path / "fleet" / REPORT_FILE).read_text() == control[1]

    def test_cache_seeding_reduces_chain_evaluations(self, control):
        report, _ = control
        evals = [result.evaluations for result in report.shards]
        # The chain head pays full price; seeded successors reuse its bank.
        assert min(evals[1:]) < evals[0]


class TestResumeBitIdentity:
    @settings(max_examples=4, deadline=None)
    @given(kill_point=st.integers(min_value=1, max_value=2))
    def test_killed_fleet_resumes_to_identical_report(self, control,
                                                      kill_point):
        fleet_dir = tempfile.mkdtemp(prefix="fleet-kill-")
        try:
            with pytest.raises(KeyboardInterrupt):
                run_fleet(fleet_dir, stop_after=kill_point)
            resumed = FleetOrchestrator.resume(fleet_dir)
            assert len(resumed.scenarios) == len(MATRIX)
            resumed.run()
            from pathlib import Path

            assert (Path(fleet_dir) / REPORT_FILE).read_text() == control[1]
        finally:
            shutil.rmtree(fleet_dir, ignore_errors=True)

    def test_resume_of_complete_fleet_is_a_no_op_rerun(self, control,
                                                       tmp_path):
        fleet_dir = tmp_path / "fleet"
        run_fleet(fleet_dir)
        report = FleetOrchestrator.resume(fleet_dir).run()
        assert report.exit_code == EXIT_OK
        assert (fleet_dir / REPORT_FILE).read_text() == control[1]


class TestExitTaxonomy:
    def test_fault_exhaustion_maps_to_exit_3(self, tmp_path):
        matrix = ScenarioMatrix(chip=("bulldozer",), threads=(1,),
                                budget=("4x2",), seed=(1,))
        orchestrator = FleetOrchestrator(
            matrix, tmp_path / "fleet", workers=1,
            fault_policy=FaultPolicy(max_retries=0, eval_timeout_s=1e-9),
        )
        report = orchestrator.run()
        assert report.exit_code == EXIT_FAULTS
        assert report.failed_shards[0].exit_code == EXIT_FAULTS
        # The failed shard still lands in the written report.
        payload = json.loads((tmp_path / "fleet" / REPORT_FILE).read_text())
        assert payload["exit_code"] == EXIT_FAULTS

    def test_crash_maps_to_exit_70_with_crash_report(self, tmp_path,
                                                     monkeypatch):
        import repro.fleet.shard as shard_mod

        def explode(scenario):
            raise RuntimeError("simulated backend crash")

        monkeypatch.setattr(shard_mod, "scenario_platform", explode)
        matrix = ScenarioMatrix(chip=("bulldozer",), threads=(1,),
                                budget=("4x2",), seed=(1,))
        report = FleetOrchestrator(matrix, tmp_path / "fleet",
                                   workers=1).run()
        assert report.exit_code == EXIT_CRASH
        shard_dir = tmp_path / "fleet" / "shards" / matrix.expand()[0].scenario_id
        crash = json.loads((shard_dir / "crash_report.json").read_text())
        assert "simulated backend crash" in crash["error"]

    def test_partial_fleet_exits_nonzero_but_writes_report(self, tmp_path,
                                                           monkeypatch):
        import repro.fleet.orchestrator as orch_mod
        from repro.fleet.shard import ShardResult, run_shard as real_run_shard

        def flaky_run_shard(spec):
            if spec.scenario.seed == 2:
                return ShardResult(
                    scenario=spec.scenario.axes(),
                    scenario_id=spec.scenario.scenario_id,
                    status="failed", exit_code=EXIT_FAILURE, error="boom",
                )
            return real_run_shard(spec)

        monkeypatch.setattr(orch_mod, "run_shard", flaky_run_shard)
        matrix = ScenarioMatrix(chip=("bulldozer",), threads=(1,),
                                budget=("4x2",), seed=(1, 2))
        report = FleetOrchestrator(matrix, tmp_path / "fleet",
                                   workers=1).run()
        assert report.exit_code == EXIT_FAILURE
        payload = json.loads((tmp_path / "fleet" / REPORT_FILE).read_text())
        assert len(payload["shards"]) == 2
        assert [row["status"] for row in payload["shards"]] == ["ok", "failed"]


class TestFleetCli:
    def test_run_status_report_round_trip(self, tmp_path, capsys):
        fleet_dir = tmp_path / "fleet"
        code = main([
            "fleet", "run", "--matrix", "chip=bulldozer",
            "--matrix", "threads=1", "--matrix", "budget=4x2",
            "--matrix", "seed=1", "--dir", str(fleet_dir), "--workers", "1",
        ])
        assert code == EXIT_OK
        assert "1 scenario(s)" in capsys.readouterr().out
        assert main(["fleet", "status", str(fleet_dir)]) == EXIT_OK
        assert "1/1 shard(s) complete" in capsys.readouterr().out
        assert main(["fleet", "report", str(fleet_dir), "--check"]) == EXIT_OK
        assert "# Fleet report" in capsys.readouterr().out

    def test_run_without_matrix_is_config_error(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path / "fleet")])
        assert code == 2
        assert "needs a scenario matrix" in capsys.readouterr().err

    def test_fault_exhausted_fleet_exits_3(self, tmp_path, capsys):
        code = main([
            "fleet", "run", "--matrix", "chip=bulldozer",
            "--matrix", "threads=1", "--matrix", "budget=4x2",
            "--matrix", "seed=1", "--dir", str(tmp_path / "fleet"),
            "--workers", "1", "--eval-timeout", "1e-9", "--eval-retries", "0",
        ])
        assert code == EXIT_FAULTS

    def test_spec_file_drives_the_run(self, tmp_path, capsys):
        spec = tmp_path / "fleet.toml"
        spec.write_text(
            '[matrix]\nchip = ["bulldozer"]\nthreads = [1]\n'
            'budget = ["4x2"]\nseed = [1]\n\n[fleet]\nworkers = 1\n'
        )
        code = main(["fleet", "run", "--spec", str(spec),
                     "--dir", str(tmp_path / "fleet")])
        assert code == EXIT_OK

    def test_status_of_non_fleet_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["fleet", "status", str(tmp_path)]) == EXIT_FAILURE
        assert "fleet" in capsys.readouterr().err
