"""Fleet supervision: hung/crashed shards, graceful stops, exit 75.

The fakes below stand in for :func:`run_shard` through the orchestrator's
``task_fn`` seam; they are module-level so the process pool can pickle
them by reference.
"""

import os
import time

import pytest

from repro.core.telemetry import ShardEvent, SupervisorEvent
from repro.errors import (
    EXIT_INTERRUPTED,
    CampaignInterrupted,
    ConfigurationError,
)
from repro.fleet.matrix import ScenarioMatrix
from repro.fleet.orchestrator import FleetOrchestrator
from repro.fleet.shard import ShardResult, classify_failure
from repro.supervision import SupervisionExhaustedError


def two_seed_matrix():
    """Two scenarios on one platform chain (same chip/threads/mode)."""
    return ScenarioMatrix.from_cli(
        ["chip=bulldozer", "threads=2", "budget=4x2", "seed=1,2"]
    )


def two_chain_matrix():
    """Two scenarios on distinct chains (different thread counts)."""
    return ScenarioMatrix.from_cli(
        ["chip=bulldozer", "threads=2,4", "budget=4x2", "seed=1"]
    )


def _ok_result(spec):
    return ShardResult(
        scenario=spec.scenario.axes(),
        scenario_id=spec.scenario.scenario_id,
        status="ok",
        droop_v=0.05,
        best_fitness=1.0,
        evaluations=8,
        resonance_hz=1e8,
    )


def fake_ok(spec):
    return _ok_result(spec)


def fake_hang_on_seed2(spec):
    if spec.scenario.seed == 2:
        time.sleep(120)
    return _ok_result(spec)


def fake_abort_on_seed2(spec):
    if spec.scenario.seed == 2:
        os._exit(5)
    return _ok_result(spec)


def fake_abort_always(spec):
    os._exit(5)


def fake_interrupted_on_seed2(spec):
    if spec.scenario.seed == 2:
        return ShardResult(
            scenario=spec.scenario.axes(),
            scenario_id=spec.scenario.scenario_id,
            status="interrupted",
            exit_code=EXIT_INTERRUPTED,
            error=("CampaignInterrupted: campaign interrupted by "
                   "signal SIGTERM at generation 1"),
        )
    return _ok_result(spec)


def fake_sleep_on_4_threads(spec):
    if spec.scenario.threads == 4:
        time.sleep(120)
    return _ok_result(spec)


class Recorder:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def supervisor(self, action):
        return [e for e in self.events
                if isinstance(e, SupervisorEvent) and e.action == action]

    def shard_statuses(self):
        return [(e.scenario, e.status) for e in self.events
                if isinstance(e, ShardEvent)]


class TestClassification:
    def test_campaign_interrupted_maps_to_exit_75(self):
        assert classify_failure(CampaignInterrupted("signal SIGTERM")) == 75
        assert classify_failure(
            CampaignInterrupted("wall-clock budget (3600s)")
        ) == EXIT_INTERRUPTED

    def test_supervision_knob_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FleetOrchestrator(two_seed_matrix(), tmp_path,
                              shard_timeout_s=0)
        with pytest.raises(ConfigurationError):
            FleetOrchestrator(two_seed_matrix(), tmp_path,
                              shard_retries=-1)


class TestHungShard:
    def test_hung_shard_killed_and_failed_without_poisoning_chain(
        self, tmp_path
    ):
        recorder = Recorder()
        orchestrator = FleetOrchestrator(
            two_seed_matrix(),
            tmp_path / "fleet",
            workers=2,
            observers=[recorder],
            shard_timeout_s=1.0,
            shard_retries=0,
            task_fn=fake_hang_on_seed2,
        )
        report = orchestrator.run()
        assert len(report.ok_shards) == 1
        assert len(report.failed_shards) == 1
        failed = report.failed_shards[0]
        assert "WorkerHangError" in failed.error
        assert recorder.supervisor("hang-kill")
        assert recorder.supervisor("respawn")

    def test_hung_shard_is_retried_before_giving_up(self, tmp_path):
        recorder = Recorder()
        orchestrator = FleetOrchestrator(
            two_seed_matrix(),
            tmp_path / "fleet",
            workers=2,
            observers=[recorder],
            shard_timeout_s=1.0,
            shard_retries=1,
            task_fn=fake_hang_on_seed2,
        )
        report = orchestrator.run()
        assert len(report.failed_shards) == 1
        # Two strikes: the first hang requeues, the second gives up.
        assert len(recorder.supervisor("hang-kill")) == 2


class TestCrashedShard:
    def test_crashed_shard_failed_and_sibling_completes(self, tmp_path):
        recorder = Recorder()
        orchestrator = FleetOrchestrator(
            two_seed_matrix(),
            tmp_path / "fleet",
            workers=2,
            observers=[recorder],
            shard_retries=0,
            task_fn=fake_abort_on_seed2,
        )
        report = orchestrator.run()
        assert len(report.ok_shards) == 1
        assert len(report.failed_shards) == 1
        assert "WorkerCrashError" in report.failed_shards[0].error
        assert recorder.supervisor("crash")

    def test_rebuild_budget_exhaustion_raises(self, tmp_path):
        orchestrator = FleetOrchestrator(
            two_seed_matrix(),
            tmp_path / "fleet",
            workers=2,
            max_pool_rebuilds=0,
            task_fn=fake_abort_always,
        )
        with pytest.raises(SupervisionExhaustedError):
            orchestrator.run()


class TestGracefulStop:
    def test_serial_stop_check_interrupts_before_work(self, tmp_path):
        orchestrator = FleetOrchestrator(
            two_seed_matrix(),
            tmp_path / "fleet",
            workers=1,
            stop_check=lambda: "wall-clock budget (0s)",
            task_fn=fake_ok,
        )
        with pytest.raises(CampaignInterrupted) as excinfo:
            orchestrator.run()
        assert excinfo.value.checkpoint_path == str(tmp_path / "fleet")
        # The report over whatever finished was still written.
        assert (tmp_path / "fleet" / "report.json").exists()

    def test_serial_signal_interrupted_shard_stops_the_fleet(self, tmp_path):
        recorder = Recorder()
        orchestrator = FleetOrchestrator(
            two_seed_matrix(),
            tmp_path / "fleet",
            workers=1,
            observers=[recorder],
            task_fn=fake_interrupted_on_seed2,
        )
        with pytest.raises(CampaignInterrupted) as excinfo:
            orchestrator.run()
        assert "signal stop propagated" in excinfo.value.reason
        assert (tmp_path / "fleet" / "report.json").exists()
        statuses = dict(recorder.shard_statuses())
        assert "interrupted" in statuses.values()

    def test_pool_drain_tolerates_killed_workers(self, tmp_path):
        """A stop during a long shard TERMs the workers; the sleeping
        fake dies, and the drain treats it as interrupted-and-resumable
        rather than crashing the fleet."""
        recorder = Recorder()
        finished = []

        def stop_after_first():
            return "test budget" if finished else None

        class CountOk:
            def on_event(self, event):
                if isinstance(event, ShardEvent) and event.status == "ok":
                    finished.append(event.scenario)

        orchestrator = FleetOrchestrator(
            two_chain_matrix(),
            tmp_path / "fleet",
            workers=2,
            observers=[recorder, CountOk()],
            stop_check=stop_after_first,
            task_fn=fake_sleep_on_4_threads,
        )
        with pytest.raises(CampaignInterrupted) as excinfo:
            orchestrator.run()
        assert "test budget" in excinfo.value.reason
        assert (tmp_path / "fleet" / "report.json").exists()
        statuses = recorder.shard_statuses()
        assert ("shutdown" in [e.action for e in recorder.events
                               if isinstance(e, SupervisorEvent)])
        assert any(status == "interrupted" for _, status in statuses)
