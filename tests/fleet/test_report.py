"""Fleet report aggregation, exit-code taxonomy, and rendering."""

import json

from repro.errors import (
    EXIT_CRASH,
    EXIT_FAILURE,
    EXIT_FAULTS,
    EXIT_INVARIANT,
    EXIT_OK,
)
from repro.fleet.report import (
    FleetReport,
    aggregate_exit_code,
    report_from_payload,
)
from repro.fleet.shard import ShardResult


def ok_result(scenario_id, chip="bulldozer", pdn="nominal", droop=0.04):
    return ShardResult(
        scenario={"chip": chip, "pdn": pdn, "threads": 2,
                  "budget": "4x2", "mode": "resonant", "seed": 1},
        scenario_id=scenario_id,
        status="ok",
        droop_v=droop,
        best_fitness=droop,
        evaluations=8,
        resonance_hz=1e8,
        timing={"wall_s": 1.0},
    )


def failed_result(scenario_id, exit_code):
    return ShardResult(
        scenario={"chip": "bulldozer", "pdn": "nominal", "threads": 2,
                  "budget": "4x2", "mode": "resonant", "seed": 1},
        scenario_id=scenario_id,
        status="failed",
        exit_code=exit_code,
        error="boom",
        timing={"wall_s": 0.5},
    )


class TestExitCodeAggregation:
    def test_all_ok_and_complete_is_zero(self):
        results = [ok_result("a"), ok_result("b")]
        assert aggregate_exit_code(results, expected=2) == EXIT_OK

    def test_most_severe_failure_wins(self):
        results = [ok_result("a"), failed_result("b", EXIT_FAULTS),
                   failed_result("c", EXIT_INVARIANT)]
        assert aggregate_exit_code(results, expected=3) == EXIT_INVARIANT
        results.append(failed_result("d", EXIT_CRASH))
        assert aggregate_exit_code(results, expected=4) == EXIT_CRASH

    def test_missing_shards_without_failures_still_fail(self):
        results = [ok_result("a")]
        assert aggregate_exit_code(results, expected=3) == EXIT_FAILURE


class TestFleetReport:
    def test_rows_sorted_and_timing_dropped(self):
        report = FleetReport.build(
            ["b", "a"], [ok_result("b"), ok_result("a")]
        )
        payload = report.to_dict()
        assert [row["scenario_id"] for row in payload["shards"]] == ["a", "b"]
        assert all("timing" not in row for row in payload["shards"])

    def test_json_rendering_is_canonical(self):
        results = [ok_result("a"), ok_result("b")]
        one = FleetReport.build(["a", "b"], results).to_json()
        two = FleetReport.build(["b", "a"], list(reversed(results))).to_json()
        assert one == two

    def test_missing_shards_reported(self):
        report = FleetReport.build(["a", "b", "c"], [ok_result("a")])
        assert report.missing == ("b", "c")
        assert not report.complete
        assert report.exit_code == EXIT_FAILURE
        assert "| b | missing |" in report.to_markdown()

    def test_best_per_platform_deepest_droop(self):
        report = FleetReport.build(
            ["a", "b", "c", "d"],
            [
                ok_result("a", droop=0.03),
                ok_result("b", droop=0.05),
                ok_result("c", chip="phenom", droop=0.02),
                ok_result("d", pdn="+10%", droop=0.01),
            ],
        )
        best = report.best_per_platform()
        assert best["bulldozer/nominal"].scenario_id == "b"
        assert best["phenom/nominal"].scenario_id == "c"
        assert best["bulldozer/+10%"].scenario_id == "d"
        assert report.to_dict()["best_per_platform"] == {
            "bulldozer/+10%": "d",
            "bulldozer/nominal": "b",
            "phenom/nominal": "c",
        }

    def test_markdown_lists_failures_with_exit_codes(self):
        report = FleetReport.build(
            ["a", "b"], [ok_result("a"), failed_result("b", EXIT_FAULTS)]
        )
        markdown = report.to_markdown()
        assert f"failed (exit {EXIT_FAULTS})" in markdown
        assert "`b` exit 3: boom" in markdown
        assert report.exit_code == EXIT_FAULTS

    def test_payload_round_trip(self):
        report = FleetReport.build(
            ["a", "b"], [ok_result("a"), failed_result("b", EXIT_CRASH)]
        )
        rebuilt = report_from_payload(json.loads(report.to_json()))
        assert rebuilt.to_json() == report.to_json()
        assert rebuilt.exit_code == EXIT_CRASH
