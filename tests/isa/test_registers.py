"""Tests for the register model and allocator."""

import pytest

from repro.errors import IsaError
from repro.isa.registers import (
    GPRS,
    LOOP_COUNTER,
    XMMS,
    Register,
    RegClass,
    RegisterAllocator,
    register_pool,
)


class TestRegisterPools:
    def test_gpr_pool_excludes_reserved_registers(self):
        names = {r.name for r in GPRS}
        assert "rsp" not in names
        assert "rbp" not in names
        assert "rcx" not in names  # loop counter is reserved

    def test_loop_counter_is_rcx(self):
        assert LOOP_COUNTER.name == "rcx"
        assert LOOP_COUNTER.rclass is RegClass.GPR

    def test_xmm_pool_has_sixteen_registers(self):
        assert len(XMMS) == 16
        assert XMMS[0].name == "xmm0"
        assert XMMS[15].name == "xmm15"

    def test_register_pool_dispatch(self):
        assert register_pool(RegClass.GPR) == GPRS
        assert register_pool(RegClass.XMM) == XMMS

    def test_register_pool_rejects_junk(self):
        with pytest.raises(IsaError):
            register_pool("not-a-class")

    def test_registers_are_value_objects(self):
        assert Register("rax", RegClass.GPR) == Register("rax", RegClass.GPR)
        assert hash(Register("rax", RegClass.GPR)) == hash(Register("rax", RegClass.GPR))
        assert Register("rax", RegClass.GPR) != Register("rbx", RegClass.GPR)

    def test_str_is_bare_name(self):
        assert str(Register("xmm3", RegClass.XMM)) == "xmm3"


class TestRegisterAllocator:
    def test_fresh_round_robins_without_repeats_within_pool(self):
        alloc = RegisterAllocator()
        seen = [alloc.fresh(RegClass.GPR) for _ in range(len(GPRS))]
        assert len(set(seen)) == len(GPRS)

    def test_fresh_wraps_after_pool_exhausted(self):
        alloc = RegisterAllocator()
        first = alloc.fresh(RegClass.XMM)
        for _ in range(len(XMMS) - 1):
            alloc.fresh(RegClass.XMM)
        assert alloc.fresh(RegClass.XMM) == first

    def test_classes_cycle_independently(self):
        alloc = RegisterAllocator()
        g1 = alloc.fresh(RegClass.GPR)
        x1 = alloc.fresh(RegClass.XMM)
        g2 = alloc.fresh(RegClass.GPR)
        assert g1 != g2
        assert x1.rclass is RegClass.XMM

    def test_dependent_source_returns_last_allocated(self):
        alloc = RegisterAllocator()
        a = alloc.fresh(RegClass.GPR)
        assert alloc.dependent_source(RegClass.GPR) == a

    def test_dependent_source_falls_back_to_fresh(self):
        alloc = RegisterAllocator()
        reg = alloc.dependent_source(RegClass.XMM)
        assert reg.rclass is RegClass.XMM

    def test_reset_restarts_cycle(self):
        alloc = RegisterAllocator()
        first = alloc.fresh(RegClass.GPR)
        alloc.fresh(RegClass.GPR)
        alloc.reset()
        assert alloc.fresh(RegClass.GPR) == first
