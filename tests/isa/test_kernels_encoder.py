"""Tests for kernel assembly and NASM encoding."""

import pytest

from repro.errors import IsaError
from repro.isa.encoder import encode_kernel_listing, encode_program
from repro.isa.instruction import make_instruction
from repro.isa.kernels import (
    LoopKernel,
    ThreadProgram,
    build_kernel,
    nop_region,
    replicate_subblock,
)
from repro.isa.opcodes import default_table
from repro.isa.registers import RegisterAllocator

TABLE = default_table()


def make_subblock(mnemonics):
    alloc = RegisterAllocator()
    return tuple(make_instruction(TABLE.get(m), alloc) for m in mnemonics)


class TestKernelConstruction:
    def test_replicate_subblock(self):
        sub = make_subblock(["add", "mulpd"])
        hp = replicate_subblock(sub, 3)
        assert len(hp) == 6
        assert hp[0].spec.mnemonic == "add"
        assert hp[2].spec.mnemonic == "add"

    def test_replicate_rejects_zero(self):
        sub = make_subblock(["add"])
        with pytest.raises(IsaError):
            replicate_subblock(sub, 0)

    def test_replicate_rejects_empty_subblock(self):
        with pytest.raises(IsaError):
            replicate_subblock((), 2)

    def test_nop_region(self):
        lp = nop_region(TABLE.nop, 5)
        assert len(lp) == 5
        assert all(i.is_nop for i in lp)

    def test_build_kernel_shape(self):
        kernel = build_kernel(
            make_subblock(["mulpd", "add"]), replications=4, lp_nops=8,
            nop_spec=TABLE.nop, name="k",
        )
        assert len(kernel.hp) == 8
        assert len(kernel.lp) == 8
        assert len(kernel) == 16
        assert kernel.name == "k"

    def test_empty_kernel_rejected(self):
        with pytest.raises(IsaError):
            LoopKernel(hp=(), lp=())

    def test_fp_and_nop_fractions(self):
        kernel = build_kernel(
            make_subblock(["mulpd", "add"]), replications=1, lp_nops=2,
            nop_spec=TABLE.nop,
        )
        assert kernel.fp_fraction == pytest.approx(0.25)
        assert kernel.nop_fraction == pytest.approx(0.5)

    def test_mnemonic_histogram(self):
        kernel = build_kernel(
            make_subblock(["add", "add", "mulpd"]), replications=2, lp_nops=1,
            nop_spec=TABLE.nop,
        )
        hist = kernel.mnemonic_histogram()
        assert hist["add"] == 4
        assert hist["mulpd"] == 2
        assert hist["nop"] == 1

    def test_with_lp_replaces_low_power_region(self):
        kernel = build_kernel(
            make_subblock(["add"]), replications=1, lp_nops=4, nop_spec=TABLE.nop,
        )
        replaced = kernel.with_lp(make_subblock(["add", "add"]))
        assert len(replaced.lp) == 2
        assert not any(i.is_nop for i in replaced.lp)
        assert replaced.hp == kernel.hp


class TestThreadProgram:
    def test_rejects_nonpositive_iterations(self):
        kernel = build_kernel(make_subblock(["add"]), replications=1, lp_nops=0,
                              nop_spec=TABLE.nop)
        with pytest.raises(IsaError):
            ThreadProgram(kernel, iterations=0)

    def test_with_phase(self):
        kernel = build_kernel(make_subblock(["add"]), replications=1, lp_nops=0,
                              nop_spec=TABLE.nop)
        prog = ThreadProgram(kernel, iterations=10)
        shifted = prog.with_phase(7)
        assert shifted.phase_cycles == 7
        assert shifted.kernel is kernel
        assert prog.phase_cycles == 0


class TestEncoder:
    def _program(self):
        kernel = build_kernel(
            make_subblock(["mulpd", "add", "load"]), replications=2, lp_nops=3,
            nop_spec=TABLE.nop, name="sm",
        )
        return ThreadProgram(kernel, iterations=1000)

    def test_program_structure(self):
        asm = encode_program(self._program())
        assert "BITS 64" in asm
        assert "global _start" in asm
        assert "mov rcx, 1000" in asm
        assert "sm_loop:" in asm
        assert "dec rcx" in asm
        assert "jnz sm_loop" in asm
        assert "syscall" in asm

    def test_prologue_initialises_checkerboards(self):
        asm = encode_program(self._program())
        assert "0x5555555555555555" in asm
        assert "0xaaaaaaaaaaaaaaaa" in asm
        assert "movdqu" in asm  # XMM registers get loaded

    def test_body_instructions_emitted_in_order(self):
        asm = encode_program(self._program())
        loop_part = asm.split("sm_loop:")[1]
        assert loop_part.index("mulpd") < loop_part.index("add ")
        assert loop_part.count("nop") == 3

    def test_listing_contains_counts(self):
        kernel = self._program().kernel
        listing = encode_kernel_listing(kernel)
        assert "6 HP + 3 LP" in listing
        assert "low-power region" in listing
