"""Tests for the opcode table."""

import pytest

from repro.errors import IsaError
from repro.isa.opcodes import (
    DEFAULT_OPCODES,
    IClass,
    OpcodeSpec,
    OpcodeTable,
    Unit,
    default_table,
)
from repro.isa.registers import RegClass


class TestOpcodeSpec:
    def test_validation_rejects_bad_latency(self):
        with pytest.raises(IsaError):
            OpcodeSpec("bad", IClass.INT_ALU, Unit.IALU, 0, 1, 10.0, 2, True, RegClass.GPR)

    def test_validation_rejects_negative_energy(self):
        with pytest.raises(IsaError):
            OpcodeSpec("bad", IClass.INT_ALU, Unit.IALU, 1, 1, -1.0, 2, True, RegClass.GPR)

    def test_fp_property_tracks_unit(self):
        table = default_table()
        assert table.get("mulpd").is_fp
        assert not table.get("add").is_fp

    def test_nop_has_no_backend_unit(self):
        assert default_table().nop.unit is Unit.NONE


class TestDefaultTable:
    def test_contains_the_paper_instruction_mix(self):
        table = default_table()
        for mnemonic in ("nop", "add", "imul", "load", "store", "mulpd", "vfmaddpd"):
            assert mnemonic in table

    def test_energy_ordering_nop_cheapest_fma_most_expensive(self):
        table = default_table()
        energies = {s.mnemonic: s.energy_pj for s in table}
        assert energies["nop"] == min(energies.values())
        assert energies["vfmaddpd"] == max(energies.values())
        assert energies["nop"] < energies["add"] < energies["mulpd"]

    def test_fma_requires_fma4_extension(self):
        spec = default_table().get("vfmaddpd")
        assert "fma4" in spec.extensions

    def test_simd_runs_on_shared_fpu(self):
        table = default_table()
        assert table.get("paddd").unit is Unit.FSIMD
        assert table.get("pxor").unit is Unit.FSIMD
        # Both pipe pools belong to the shared FP unit for throttling.
        assert table.get("paddd").is_fp
        assert table.get("mulpd").is_fp

    def test_sensitive_paths_are_marked(self):
        table = default_table()
        assert table.get("imul").path_sensitivity > 1.0
        assert table.get("load").path_sensitivity > 1.0
        assert table.get("add").path_sensitivity == 1.0


class TestOpcodeTableOperations:
    def test_get_unknown_raises(self):
        with pytest.raises(IsaError):
            default_table().get("hcf")

    def test_empty_table_rejected(self):
        with pytest.raises(IsaError):
            OpcodeTable(())

    def test_duplicate_mnemonics_rejected(self):
        spec = DEFAULT_OPCODES[0]
        with pytest.raises(IsaError):
            OpcodeTable((spec, spec))

    def test_subset_preserves_order_and_filters(self):
        table = default_table().subset(["mulpd", "add", "nop"])
        assert set(table.mnemonics) == {"mulpd", "add", "nop"}
        full_order = default_table().mnemonics
        assert table.mnemonics == tuple(
            m for m in full_order if m in {"mulpd", "add", "nop"}
        )

    def test_subset_unknown_raises(self):
        with pytest.raises(IsaError):
            default_table().subset(["add", "bogus"])

    def test_supported_on_drops_fma_for_phenom_like_cpu(self):
        phenom_exts = {"sse", "sse2", "sse3"}
        table = default_table().supported_on(phenom_exts)
        assert "vfmaddpd" not in table
        assert "vfmaddps" not in table
        assert "pmulld" not in table  # needs sse4.1
        assert "mulpd" in table
        assert "add" in table

    def test_supported_on_keeps_everything_for_bulldozer(self):
        bd_exts = {"sse", "sse2", "sse3", "sse41", "sse42", "avx", "fma4"}
        assert len(default_table().supported_on(bd_exts)) == len(default_table())

    def test_by_unit_partitions(self):
        table = default_table()
        fpu_ops = table.by_unit(Unit.FPU)
        assert all(s.unit is Unit.FPU for s in fpu_ops)
        assert {"mulpd", "addpd", "divpd"} <= {s.mnemonic for s in fpu_ops}
        simd_ops = table.by_unit(Unit.FSIMD)
        assert {"paddd", "pxor"} <= {s.mnemonic for s in simd_ops}

    def test_by_class(self):
        adds = default_table().by_class(IClass.FP_ADD)
        assert {s.mnemonic for s in adds} == {"addps", "addpd"}

    def test_nop_lookup_fails_when_absent(self):
        table = default_table().subset(["add", "mulpd"])
        with pytest.raises(IsaError):
            _ = table.nop
