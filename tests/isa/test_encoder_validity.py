"""Validity invariants on emitted NASM: the artifact must be assemblable.

No NASM binary is available in CI, so these tests enforce the structural
invariants instead: only legal two/three-operand forms, reserved registers
never clobbered by generated code, and loop integrity.
"""

import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import genome_to_program
from repro.core.genome import GenomeSpace
from repro.isa import (
    ThreadProgram,
    default_table,
    encode_program,
    make_chain,
    make_independent,
)
from repro.isa.kernels import LoopKernel, nop_region
from repro.workloads.stressmarks import (
    a_ex_canned,
    a_res_canned,
    sm1,
    sm2,
    sm_res,
    stressmark_program,
)

TABLE = default_table()

#: Mnemonics legal at the start of an emitted line.
LEGAL_LINE = re.compile(
    r"^(nop|mov|movaps|movdqu|movdqa|cqo|lea|add|sub|xor|and|or|rol|imul|idiv"
    r"|pxor|paddd|pmulld|addps|addpd|mulps|mulpd|divpd|vfmaddpd|vfmaddps"
    r"|dec|jnz|syscall)\b"
)

#: Two-operand-only legacy mnemonics: a third comma-separated register
#: operand would not assemble.
TWO_OPERAND = {
    "add", "sub", "xor", "and", "or", "imul", "mulpd", "mulps", "addpd",
    "addps", "divpd", "paddd", "pxor", "pmulld", "movaps", "movdqa",
}


def body_lines(asm: str) -> list[str]:
    lines = asm.splitlines()
    start = next(i for i, line in enumerate(lines) if line.endswith("_loop:"))
    end = next(i for i, line in enumerate(lines) if line.strip() == "dec rcx")
    return [line.strip() for line in lines[start + 1 : end]
            if line.strip() and not line.strip().startswith(";")]


def all_stressmark_programs():
    return [
        stressmark_program(sm1(TABLE)),
        stressmark_program(sm2(TABLE)),
        stressmark_program(sm_res(TABLE)),
        stressmark_program(a_res_canned(TABLE)),
        stressmark_program(a_ex_canned(TABLE)),
    ]


class TestEmittedAssembly:
    @pytest.mark.parametrize("program", all_stressmark_programs(),
                             ids=lambda p: p.kernel.name)
    def test_every_line_uses_a_legal_mnemonic(self, program):
        for line in body_lines(encode_program(program)):
            assert LEGAL_LINE.match(line), line

    @pytest.mark.parametrize("program", all_stressmark_programs(),
                             ids=lambda p: p.kernel.name)
    def test_no_three_operand_legacy_forms(self, program):
        for line in body_lines(encode_program(program)):
            mnemonic = line.split()[0]
            if mnemonic in TWO_OPERAND:
                operands = line[len(mnemonic):].split(",")
                assert len(operands) <= 2, line

    @pytest.mark.parametrize("program", all_stressmark_programs(),
                             ids=lambda p: p.kernel.name)
    def test_loop_counter_never_clobbered_by_body(self, program):
        for line in body_lines(encode_program(program)):
            destination = line.split()[1].rstrip(",") if " " in line else ""
            assert destination != "rcx", line

    @pytest.mark.parametrize("program", all_stressmark_programs(),
                             ids=lambda p: p.kernel.name)
    def test_rax_rdx_only_written_by_idiv_lowering(self, program):
        lines = body_lines(encode_program(program))
        for i, line in enumerate(lines):
            parts = line.split()
            if len(parts) < 2:
                continue
            destination = parts[1].rstrip(",")
            if destination in ("rax", "rdx"):
                # Must be part of an idiv sequence: mov rax / cqo nearby.
                window = lines[max(0, i - 1) : i + 4]
                assert any(w.startswith(("cqo", "idiv", "mov rax"))
                           for w in window), line

    def test_program_structure_is_complete(self):
        asm = encode_program(stressmark_program(sm_res(TABLE)))
        assert asm.count("_loop:") == 1
        assert "dec rcx" in asm
        assert "jnz" in asm
        assert asm.rstrip().endswith("syscall")

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_genomes_encode_to_legal_assembly(self, seed):
        space = GenomeSpace(table=TABLE, slots=12, replications=2,
                            lp_nops_min=0, lp_nops_max=64)
        genome = space.random_genome(np.random.default_rng(seed))
        program = genome_to_program(genome, space)
        for line in body_lines(encode_program(program)):
            assert LEGAL_LINE.match(line), line

    def test_chain_and_independent_builders_encode(self):
        chain = make_chain(TABLE.get("mulpd"), 4)
        indep = make_independent(TABLE.get("add"), 4)
        kernel = LoopKernel(hp=chain + indep, lp=nop_region(TABLE.nop, 4))
        for line in body_lines(encode_program(ThreadProgram(kernel, 10))):
            assert LEGAL_LINE.match(line), line
