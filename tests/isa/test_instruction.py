"""Tests for instruction construction and dependency sets."""

import pytest

from repro.errors import IsaError
from repro.isa.data_patterns import DataPattern
from repro.isa.instruction import Instruction, make_instruction, nop, used_registers
from repro.isa.opcodes import default_table
from repro.isa.registers import Register, RegClass, RegisterAllocator

TABLE = default_table()


def gpr(name: str) -> Register:
    return Register(name, RegClass.GPR)


def xmm(name: str) -> Register:
    return Register(name, RegClass.XMM)


class TestInstructionValidation:
    def test_missing_destination_rejected(self):
        with pytest.raises(IsaError):
            Instruction(spec=TABLE.get("add"), dest=None, sources=(gpr("rax"), gpr("rbx")))

    def test_unexpected_destination_rejected(self):
        with pytest.raises(IsaError):
            Instruction(spec=TABLE.get("store"), dest=gpr("rax"), sources=(gpr("rbx"), gpr("rdx")))

    def test_source_arity_enforced(self):
        with pytest.raises(IsaError):
            Instruction(spec=TABLE.get("add"), dest=gpr("rax"), sources=(gpr("rbx"),))

    def test_operand_class_enforced(self):
        with pytest.raises(IsaError):
            Instruction(spec=TABLE.get("mulpd"), dest=gpr("rax"), sources=(gpr("rbx"), gpr("rdx")))

    def test_nop_takes_no_operands(self):
        inst = nop(TABLE.nop)
        assert inst.is_nop
        assert inst.reads == frozenset()
        assert inst.writes == frozenset()


class TestDependencySets:
    def test_reads_and_writes(self):
        inst = Instruction(
            spec=TABLE.get("add"), dest=gpr("rax"), sources=(gpr("rbx"), gpr("rdx"))
        )
        assert inst.reads == {gpr("rbx"), gpr("rdx")}
        assert inst.writes == {gpr("rax")}

    def test_store_writes_nothing(self):
        inst = Instruction(spec=TABLE.get("store"), sources=(gpr("rax"), gpr("rbx")))
        assert inst.writes == frozenset()

    def test_fma_has_three_sources(self):
        alloc = RegisterAllocator()
        inst = make_instruction(TABLE.get("vfmaddpd"), alloc)
        assert len(inst.sources) == 3
        assert inst.dest is not None


class TestMakeInstruction:
    def test_independent_operands_by_default(self):
        alloc = RegisterAllocator()
        a = make_instruction(TABLE.get("add"), alloc)
        b = make_instruction(TABLE.get("add"), alloc)
        # b must not read a's destination: no chain.
        assert a.dest not in b.reads

    def test_dependent_chains_read_previous_dest(self):
        alloc = RegisterAllocator()
        a = make_instruction(TABLE.get("mulpd"), alloc)
        b = make_instruction(TABLE.get("mulpd"), alloc, dependent=True)
        assert a.dest in b.reads

    def test_data_pattern_propagates(self):
        alloc = RegisterAllocator()
        inst = make_instruction(TABLE.get("add"), alloc, data=DataPattern.ZEROS)
        assert inst.data is DataPattern.ZEROS

    def test_nop_helper_rejects_non_nop(self):
        with pytest.raises(IsaError):
            nop(TABLE.get("add"))


class TestNasmRendering:
    def test_alu_lowered_to_legal_two_operand_form(self):
        inst = Instruction(
            spec=TABLE.get("add"), dest=gpr("rax"), sources=(gpr("rbx"), gpr("rdx"))
        )
        assert inst.nasm() == "mov rax, rbx\nadd rax, rdx"

    def test_idiv_lowered_to_implicit_operand_sequence(self):
        inst = Instruction(
            spec=TABLE.get("idiv"), dest=gpr("rbx"), sources=(gpr("rsi"), gpr("rdx"))
        )
        lines = inst.nasm().splitlines()
        assert lines[0] == "mov rax, rsi"
        assert lines[1] == "cqo"
        assert lines[2] == "idiv rdx"
        assert lines[3] == "mov rbx, rax"

    def test_load_store_use_memory_operand(self):
        load = Instruction(spec=TABLE.get("load"), dest=gpr("rax"), sources=(gpr("rbx"),))
        assert "[rsp" in load.nasm()
        store = Instruction(spec=TABLE.get("store"), sources=(gpr("rax"), gpr("rbx")))
        assert store.nasm().startswith("mov [rsp")

    def test_nop_renders_bare(self):
        assert nop(TABLE.nop).nasm() == "nop"

    def test_sse_lowered_to_destructive_form(self):
        inst = Instruction(
            spec=TABLE.get("mulpd"), dest=xmm("xmm0"), sources=(xmm("xmm1"), xmm("xmm2"))
        )
        assert inst.nasm() == "movaps xmm0, xmm1\nmulpd xmm0, xmm2"

    def test_simd_int_uses_movdqa(self):
        inst = Instruction(
            spec=TABLE.get("paddd"), dest=xmm("xmm0"), sources=(xmm("xmm1"), xmm("xmm2"))
        )
        assert inst.nasm().startswith("movdqa xmm0, xmm1")

    def test_fma4_keeps_native_four_operand_form(self):
        alloc = RegisterAllocator()
        inst = make_instruction(TABLE.get("vfmaddpd"), alloc)
        assert inst.nasm().startswith("vfmaddpd ")
        assert "\n" not in inst.nasm()


class TestUsedRegisters:
    def test_partitions_by_class(self):
        alloc = RegisterAllocator()
        insts = [
            make_instruction(TABLE.get("add"), alloc),
            make_instruction(TABLE.get("mulpd"), alloc),
            nop(TABLE.nop),
        ]
        gprs, xmms = used_registers(insts)
        assert all(r.rclass is RegClass.GPR for r in gprs)
        assert all(r.rclass is RegClass.XMM for r in xmms)
        assert gprs and xmms
