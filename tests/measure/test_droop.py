"""Tests for droop metrics, events, and histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.measure.droop import (
    DroopHistogram,
    DroopStatistics,
    droop_events,
)

VDD = 1.2


class TestDroopStatistics:
    def test_summary_values(self):
        samples = np.array([1.2, 1.1, 1.25, 1.18])
        stats = DroopStatistics.from_samples(samples, VDD)
        assert stats.min_v == pytest.approx(1.1)
        assert stats.max_droop_v == pytest.approx(0.1)
        assert stats.max_overshoot_v == pytest.approx(0.05)
        assert stats.samples == 4

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            DroopStatistics.from_samples(np.array([]), VDD)


class TestDroopEvents:
    def test_no_events_above_threshold(self):
        assert droop_events(np.full(10, 1.2), threshold_v=1.1) == []

    def test_single_event_segmented(self):
        samples = np.array([1.2, 1.2, 1.05, 1.02, 1.08, 1.2])
        events = droop_events(samples, threshold_v=1.1)
        assert len(events) == 1
        event = events[0]
        assert (event.start_index, event.end_index) == (2, 5)
        assert event.min_v == pytest.approx(1.02)

    def test_multiple_events(self):
        samples = np.array([1.0, 1.2, 1.0, 1.2, 1.0])
        events = droop_events(samples, threshold_v=1.1)
        assert len(events) == 3

    def test_event_at_trace_edges(self):
        samples = np.array([1.0, 1.2, 1.0])
        events = droop_events(samples, threshold_v=1.1)
        assert events[0].start_index == 0
        assert events[-1].end_index == 3

    @given(st.lists(st.floats(0.9, 1.3, allow_nan=False), min_size=1, max_size=200),
           st.floats(1.0, 1.2))
    @settings(max_examples=60, deadline=None)
    def test_events_cover_exactly_the_below_threshold_samples(self, values, thr):
        samples = np.array(values)
        events = droop_events(samples, threshold_v=thr)
        covered = np.zeros(len(samples), dtype=bool)
        for e in events:
            assert e.start_index < e.end_index
            covered[e.start_index : e.end_index] = True
            assert np.all(samples[e.start_index : e.end_index] < thr)
        np.testing.assert_array_equal(covered, samples < thr)


class TestDroopHistogram:
    def test_counts_all_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(1.2, 0.01, 5000)
        hist = DroopHistogram.from_samples(samples, VDD, bins=50)
        assert hist.total_samples == 5000
        assert len(hist.bin_centers) == 50

    def test_modal_voltage_near_distribution_mode(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(1.2, 0.005, 20000)
        hist = DroopHistogram.from_samples(samples, VDD, bins=100)
        assert hist.modal_voltage == pytest.approx(1.2, abs=0.003)

    def test_tail_fraction(self):
        samples = np.concatenate([np.full(900, 1.2), np.full(100, 1.0)])
        hist = DroopHistogram.from_samples(samples, VDD, bins=40)
        assert hist.tail_fraction(1.1) == pytest.approx(0.1, abs=0.01)

    def test_spread(self):
        samples = np.concatenate([np.full(10, 1.0), np.full(10, 1.2)])
        hist = DroopHistogram.from_samples(samples, VDD, bins=20)
        assert hist.spread_v() == pytest.approx(0.2, abs=0.03)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            DroopHistogram.from_samples(np.array([]), VDD)
        with pytest.raises(MeasurementError):
            DroopHistogram.from_samples(np.ones(4), VDD, bins=1)

    def test_fixed_range_allows_comparison(self):
        a = DroopHistogram.from_samples(np.full(10, 1.15), VDD, bins=10,
                                        v_range=(1.0, 1.3))
        b = DroopHistogram.from_samples(np.full(10, 1.25), VDD, bins=10,
                                        v_range=(1.0, 1.3))
        np.testing.assert_array_equal(a.bin_edges, b.bin_edges)
