"""Tests for the oscilloscope model and the failure search."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.failure import FailureModel, voltage_at_failure
from repro.measure.oscilloscope import Oscilloscope, dithering_scope, droop_capture_scope
from repro.pdn.transient import VoltageTrace

DT = 1 / 3.2e9
VDD = 1.2


def trace_of(samples):
    return VoltageTrace(np.asarray(samples, dtype=float), DT, VDD)


class TestOscilloscope:
    def test_fast_scope_passes_native_samples(self):
        trace = trace_of(np.linspace(1.1, 1.2, 100))
        capture = droop_capture_scope().capture(trace)
        assert len(capture.samples) == 100
        assert capture.sample_rate_hz == pytest.approx(3.2e9)

    def test_slow_scope_decimates(self):
        trace = trace_of(np.full(3200, VDD))
        capture = dithering_scope().capture(trace)  # 100 MS/s: stride 32
        assert len(capture.samples) == 100
        assert capture.sample_rate_hz == pytest.approx(1e8)

    def test_peak_detect_keeps_narrow_droops(self):
        samples = np.full(3200, VDD)
        samples[1600] = 1.05  # a single-cycle (0.3 ns) droop
        capture = dithering_scope().capture(trace_of(samples))
        assert capture.samples.min() == pytest.approx(1.05)

    def test_plain_decimation_can_miss_narrow_droops(self):
        samples = np.full(3200, VDD)
        samples[1601] = 1.05  # not on the stride-32 grid
        scope = Oscilloscope(100e6, peak_detect=False)
        capture = scope.capture(trace_of(samples))
        assert capture.samples.min() == pytest.approx(VDD)

    def test_statistics_and_histogram_round_trip(self):
        samples = np.concatenate([np.full(100, 1.2), np.full(10, 1.1)])
        capture = droop_capture_scope().capture(trace_of(samples))
        assert capture.statistics().max_droop_v == pytest.approx(0.1)
        assert capture.histogram(bins=10).total_samples == 110

    def test_triggered_droops(self):
        samples = np.array([1.2, 1.0, 1.2, 1.0, 1.2])
        capture = droop_capture_scope().capture(trace_of(samples))
        assert len(capture.triggered_droops(1.1)) == 2

    def test_duration(self):
        capture = droop_capture_scope().capture(trace_of(np.full(3200, VDD)))
        assert capture.duration_s == pytest.approx(3200 * DT)

    def test_bad_rate_rejected(self):
        with pytest.raises(MeasurementError):
            Oscilloscope(0)

    def test_too_short_for_peak_detect_rejected(self):
        scope = Oscilloscope(100e6, peak_detect=True)
        with pytest.raises(MeasurementError):
            scope.capture(trace_of(np.full(8, VDD)))


class TestFailureModel:
    def test_fails_when_voltage_under_requirement(self):
        model = FailureModel(vcrit_base=1.0)
        voltage = trace_of([1.2, 1.04, 1.2])
        sens = np.array([1.0, 1.05, 1.0])  # requires 1.05 at the droop
        assert model.fails(voltage, sens)

    def test_passes_when_margin_positive(self):
        model = FailureModel(vcrit_base=1.0)
        voltage = trace_of([1.2, 1.06, 1.2])
        sens = np.array([1.0, 1.05, 1.0])
        assert not model.fails(voltage, sens)

    def test_idle_cycles_impose_no_requirement(self):
        model = FailureModel(vcrit_base=1.0)
        voltage = trace_of([0.5, 1.2])  # deep droop but machine idle
        sens = np.array([0.0, 1.0])
        assert not model.fails(voltage, sens)

    def test_margin_value(self):
        model = FailureModel(vcrit_base=1.0)
        voltage = trace_of([1.2, 1.1])
        sens = np.array([1.0, 1.0])
        assert model.margin_v(voltage, sens) == pytest.approx(0.1)

    def test_margin_infinite_when_never_active(self):
        model = FailureModel(vcrit_base=1.0)
        assert model.margin_v(trace_of([1.2]), np.array([0.0])) == float("inf")

    def test_sensitive_paths_fail_at_higher_voltage(self):
        """The SM2 effect: same droop, earlier failure via sensitivity."""
        model = FailureModel(vcrit_base=1.0)

        def run_at_factory(sensitivity):
            def run_at(vs):
                # Fixed 80 mV droop regardless of supply.
                voltage = VoltageTrace(np.array([vs, vs - 0.08]), DT, vs)
                return voltage, np.array([sensitivity, sensitivity])
            return run_at

        vf_plain = voltage_at_failure(run_at_factory(1.0), model, vdd_nominal=VDD)
        vf_sensitive = voltage_at_failure(run_at_factory(1.06), model, vdd_nominal=VDD)
        assert vf_sensitive > vf_plain

    def test_failure_search_uses_125mv_steps(self):
        model = FailureModel(vcrit_base=1.0)
        calls = []

        def run_at(vs):
            calls.append(vs)
            voltage = VoltageTrace(np.array([vs - 0.05]), DT, vs)
            return voltage, np.array([1.0])

        vf = voltage_at_failure(run_at, model, vdd_nominal=VDD)
        # Fails when vs - 0.05 < 1.0, i.e. at the first step at/below 1.05
        # (floating-point rounding may trip the boundary step itself).
        assert 1.0375 - 1e-9 <= vf <= 1.05 + 1e-9
        steps = np.diff(calls)
        assert np.allclose(steps, -0.0125)

    def test_failure_search_gives_up(self):
        model = FailureModel(vcrit_base=0.01)

        def run_at(vs):
            return VoltageTrace(np.array([vs]), DT, vs), np.array([1.0])

        with pytest.raises(MeasurementError):
            voltage_at_failure(run_at, model, vdd_nominal=VDD, max_steps=5)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            FailureModel(vcrit_base=0.0)
        model = FailureModel(vcrit_base=1.0)
        with pytest.raises(MeasurementError):
            model.fails(trace_of([1.2]), np.array([]))
