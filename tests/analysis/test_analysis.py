"""Tests for spectrum analysis and report formatting."""

import numpy as np
import pytest

from repro.analysis.report import format_table, millivolts, relative, vf_delta_label
from repro.analysis.spectrum import activity_fundamental_hz, amplitude_spectrum
from repro.errors import MeasurementError, ReproError

DT = 1 / 3.2e9


class TestSpectrum:
    def test_pure_tone_amplitude_and_frequency(self):
        n = 4096
        t = np.arange(n) * DT
        f0 = 100e6
        wave = 0.05 * np.sin(2 * np.pi * f0 * t)
        spec = amplitude_spectrum(wave, DT)
        assert spec.dominant_frequency() == pytest.approx(f0, rel=0.01)
        assert spec.amplitude_at(f0) == pytest.approx(0.05, rel=0.05)

    def test_dc_removed(self):
        wave = np.full(1024, 3.0)
        spec = amplitude_spectrum(wave, DT)
        assert spec.amplitudes.max() == pytest.approx(0.0, abs=1e-12)

    def test_f_min_skips_low_frequency_content(self):
        n = 8192
        t = np.arange(n) * DT
        wave = np.sin(2 * np.pi * 5e6 * t) + 0.3 * np.sin(2 * np.pi * 120e6 * t)
        spec = amplitude_spectrum(wave, DT)
        assert spec.dominant_frequency() == pytest.approx(5e6, rel=0.05)
        assert spec.dominant_frequency(f_min_hz=50e6) == pytest.approx(120e6, rel=0.05)

    def test_activity_fundamental(self):
        n = 4096
        square = np.tile(np.concatenate([np.ones(16), np.zeros(16)]), n // 32)
        assert activity_fundamental_hz(square, DT) == pytest.approx(1e8, rel=0.02)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            amplitude_spectrum(np.ones(2), DT)
        with pytest.raises(MeasurementError):
            amplitude_spectrum(np.ones(100), 0.0)
        with pytest.raises(MeasurementError):
            amplitude_spectrum(np.ones(100), DT).dominant_frequency(f_min_hz=1e12)


class TestReport:
    def test_table_renders_aligned(self):
        text = format_table(
            ["name", "droop"], [["SM1", 1.0], ["A-Res", 1.39]], title="Fig 9"
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 9"
        assert "SM1" in text and "1.390" in text
        header_line = lines[2]
        assert header_line.startswith("name")

    def test_table_arity_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])
        with pytest.raises(ReproError):
            format_table([], [])

    def test_relative(self):
        assert relative(1.39, 1.0) == pytest.approx(1.39)
        with pytest.raises(ReproError):
            relative(1.0, 0.0)

    def test_millivolts(self):
        assert millivolts(0.0125) == pytest.approx(12.5)

    def test_vf_delta_label(self):
        assert vf_delta_label(1.05, 1.05) == "VF"
        assert vf_delta_label(1.05 - 0.062, 1.05) == "VF - 62 mV"
