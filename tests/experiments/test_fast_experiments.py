"""Tests for the fast experiment reproductions (Fig. 3/4/6, Sec. 3B/5A1/5A5).

Each test asserts the paper's qualitative *shape*, per DESIGN.md section 4.
"""

import pytest

from repro.core.resonance import probe_program
from repro.experiments.fig3_resonances import run_fig3
from repro.experiments.fig4_excitation_vs_resonance import run_fig4
from repro.experiments.fig6_natural_dithering import run_fig6
from repro.experiments.sec3b_dithering_cost import run_sec3b
from repro.experiments.sec5a1_barrier import run_sec5a1
from repro.experiments.sec5a5_nop_analysis import run_sec5a5
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    return bulldozer_testbed()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_fig3(platform)

    def test_three_labelled_resonances(self, result):
        labels = [r.label for r in result.sweep.resonances]
        assert labels == ["third", "second", "first"]

    def test_first_droop_peak_impedance_dominates(self, result):
        first = result.sweep.resonance("first")
        assert first.impedance_ohm > result.sweep.resonance("second").impedance_ohm
        assert first.impedance_ohm > result.sweep.resonance("third").impedance_ohm

    def test_first_droop_in_papers_band(self, result):
        # Paper Section II: first droop typically 50-200 MHz.
        assert 50e6 <= result.sweep.first_droop.frequency_hz <= 200e6

    def test_time_domain_droop_largest_at_first_resonance(self, result):
        assert result.droop_of("first") > result.droop_of("second")
        assert result.droop_of("first") > result.droop_of("third")


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_fig4(platform, TABLE)

    def test_resonance_builds_beyond_single_event(self, result):
        assert result.amplification > 1.2

    def test_both_waveforms_produce_real_droops(self, result):
        assert result.excitation.max_droop_v > 0.02
        assert result.resonance.max_droop_v > 0.05

    def test_resonant_activity_at_pdn_frequency(self, result):
        assert result.resonance.steady_frequency_hz == pytest.approx(100e6, rel=0.1)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, platform):
        program = probe_program(TABLE, hp_count=32, lp_nops=95)
        return run_fig6(platform, program, duration_s=0.1, seed=6)

    def test_tick_cadence_matches_windows_timer(self, result):
        assert len(result.ticks) == 7  # 100 ms / 15.6 ms
        spacing = result.ticks[1].start_ms - result.ticks[0].start_ms
        assert spacing == pytest.approx(15.6, abs=0.1)

    def test_envelope_varies_across_ticks(self, result):
        # The scope shot's signature: Vdd variability changes every tick.
        assert result.envelope_variation > 0.2 * result.best_natural_droop_v

    def test_natural_dithering_never_beats_guaranteed_alignment(self, result):
        assert result.best_natural_droop_v <= result.aligned_droop_v + 1e-9

    def test_better_alignment_gives_bigger_droop(self, result):
        droops = {}
        for tick in result.ticks:
            droops.setdefault(tick.misalignment_cycles, []).append(tick.max_droop_v)
        best_mis = min(droops)
        worst_mis = max(droops)
        if best_mis != worst_mis:
            assert max(droops[best_mis]) >= min(droops[worst_mis]) * 0.8


class TestSec3b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sec3b()

    def test_paper_timing_examples(self, result):
        assert result.exact_4core_s == pytest.approx(3.3e-3, rel=0.01)
        assert result.exact_8core_s / 60 == pytest.approx(18.35, rel=0.01)
        assert result.approx_8core_delta3_s == pytest.approx(67e-3, rel=0.05)

    def test_guarantees_verified(self, result):
        assert result.small_instance_full_coverage
        assert result.aligned_is_worst


class TestSec5a1:
    def test_release_skew_damps_barrier_droop(self, platform):
        result = run_sec5a1(platform, TABLE)
        assert result.natural_droop_v < result.ideal_droop_v
        assert result.damping > 0.2  # "dampened" significantly


class TestSec5a5:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_sec5a5(platform, TABLE)

    def test_add_substitution_reduces_droop(self, result):
        # Paper: the modified A-Res generated a smaller droop (by 40 mV).
        assert result.droop_loss_v > 0.005

    def test_add_substitution_shifts_frequency_lower(self, result):
        # Paper: "the frequency of the di/dt pattern shifted lower".
        assert result.frequency_shift_hz < -1e6

    def test_nop_variant_sits_on_the_resonance(self, result):
        assert result.nop_fundamental_hz == pytest.approx(100e6, rel=0.05)
