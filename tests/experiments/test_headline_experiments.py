"""Tests for the headline experiments (Fig. 9/10, Tables I–III).

These use the canned stressmarks (no GA runs) and reduced sample counts so
the whole module stays under a couple of minutes; the benchmarks/ harness
runs the full-size versions.
"""

import pytest

from repro.experiments.fig9_droop_comparison import run_fig9
from repro.experiments.fig10_histograms import run_fig10
from repro.experiments.setup import bulldozer_testbed, phenom_testbed
from repro.experiments.table1_failure import TABLE1_ORDER, run_table1
from repro.experiments.table2_throttling import run_table2
from repro.experiments.table3_phenom import run_table3
from repro.isa.opcodes import default_table

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    return bulldozer_testbed()


@pytest.fixture(scope="module")
def fig9(platform):
    return run_fig9(
        platform, TABLE,
        workload_duration_cycles=60_000,
        spec_subset=("zeusmp", "hmmer", "mcf"),
        parsec_subset=("swaptions", "fluidanimate"),
    )


class TestFig9:
    def test_baseline_is_4t_sm1(self, fig9):
        assert fig9.relative("SM1", 4) == pytest.approx(1.0)

    def test_stressmarks_beat_benchmarks_except_sm2(self, fig9):
        bench_best = max(
            fig9.relative(name, 4)
            for name, suite in fig9.suites.items()
            if suite in ("spec", "parsec")
        )
        for name in ("SM1", "SM-Res", "A-Res", "A-Ex"):
            assert fig9.relative(name, 4) > bench_best, name
        # SM2's droop is comparable to the benchmarks.
        assert fig9.relative("SM2", 4) < 1.5 * bench_best

    def test_resonant_stressmarks_dominate(self, fig9):
        assert fig9.relative("A-Res", 4) > fig9.relative("SM1", 4)
        assert fig9.relative("SM-Res", 4) > fig9.relative("SM1", 4)
        assert fig9.relative("A-Res", 4) > fig9.relative("A-Ex", 4)

    def test_droops_grow_1t_to_4t(self, fig9):
        for name in fig9.droops:
            d = fig9.droops[name]
            assert d[1] < d[4], name

    def test_stressmarks_lose_at_8t(self, fig9):
        for name in ("SM1", "SM-Res", "A-Res"):
            assert fig9.droops[name][8] < fig9.droops[name][4], name

    def test_a_res_8t_wins_at_8t_loses_below(self, fig9):
        # Paper Section V.A.2: the 8T-trained stressmark.
        assert fig9.droops["A-Res-8T"][8] > fig9.droops["A-Res"][8]
        assert fig9.droops["A-Res-8T"][8] > fig9.droops["SM-Res"][8]
        for threads in (1, 2, 4):
            assert fig9.droops["A-Res-8T"][threads] < fig9.droops["A-Res"][threads]

    def test_parsec_no_larger_than_spec(self, fig9):
        # Paper: "no significant difference in droops between PARSEC and
        # the SPEC CPU2006 suite" despite barriers.
        spec_max = max(fig9.relative(n, 4) for n, s in fig9.suites.items()
                       if s == "spec")
        parsec_max = max(fig9.relative(n, 4) for n, s in fig9.suites.items()
                         if s == "parsec")
        assert parsec_max < 1.4 * spec_max


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_fig10(platform, TABLE, samples=300_000)

    def test_zeusmp_has_least_variation(self, result):
        assert result.spread("zeusmp") < result.spread("SM1")
        assert result.spread("zeusmp") < result.spread("A-Res")

    def test_sm1_mass_near_nominal_with_tail(self, result):
        hist = result.histograms["SM1"]
        assert result.modal_offset("SM1") < 0.6 * hist.vdd_nominal
        # Long droop tail: some mass well below the mode.
        assert hist.tail_fraction(hist.modal_voltage - 0.02) > 0.0

    def test_a_res_mass_sits_near_worst_droop(self, result):
        # The resonance stressmark has "the highest number of events
        # occurring near the worst-case droop values".
        assert result.modal_offset("A-Res") > result.modal_offset("SM1")
        assert result.modal_offset("A-Res") > 2 * result.modal_offset("zeusmp")

    def test_shared_bins(self, result):
        import numpy as np

        edges = [h.bin_edges for h in result.histograms.values()]
        np.testing.assert_array_equal(edges[0], edges[1])
        np.testing.assert_array_equal(edges[0], edges[2])


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_table1(platform, TABLE)

    def test_a_res_fails_first(self, result):
        vf = result.failure_voltages
        assert vf["A-Res"] == max(vf.values())

    def test_paper_ordering(self, result):
        vf = result.failure_voltages
        ordered = [vf[name] for name in TABLE1_ORDER]
        assert ordered == sorted(ordered, reverse=True)

    def test_sm2_fails_above_benchmarks_despite_small_droop(self, result):
        # The sensitive-path insight of Section V.A.4.
        assert result.failure_voltages["SM2"] > result.failure_voltages["zeusmp"]

    def test_benchmarks_fail_last(self, result):
        vf = result.failure_voltages
        assert vf["zeusmp"] == min(vf.values())
        assert vf["swaptions"] == min(vf.values())


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, platform):
        throttled = bulldozer_testbed(fp_throttle=1)
        return run_table2(platform, throttled, TABLE)

    def test_throttling_reduces_droop_for_all(self, result):
        for name in ("SM1", "A-Res", "SM-Res"):
            free = result.row(name, throttled=False)
            capped = result.row(name, throttled=True)
            assert capped.droop_v < free.droop_v, name

    def test_throttling_least_effective_for_sm1(self, result):
        # SM1 has a non-FP stress path the throttle cannot touch.
        def retained(name):
            return (result.row(name, throttled=True).droop_v
                    / result.row(name, throttled=False).droop_v)

        assert retained("SM1") > retained("A-Res")
        assert retained("SM1") > retained("SM-Res")

    def test_throttling_improves_failure_voltage(self, result):
        for name in ("SM1", "A-Res", "SM-Res"):
            free = result.row(name, throttled=False)
            capped = result.row(name, throttled=True)
            assert capped.failure_v <= free.failure_v, name

    def test_audit_works_around_the_throttle(self, result):
        th = result.row("A-Res-Th", throttled=True)
        assert th.droop_v > result.row("A-Res", throttled=True).droop_v
        assert th.droop_v > result.row("SM-Res", throttled=True).droop_v
        # But cannot match the unthrottled droops.
        assert th.droop_v < result.row("A-Res", throttled=False).droop_v


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(phenom_testbed(), TABLE)

    def test_sm1_rejected_for_missing_fma4(self, result):
        assert result.sm1_rejected

    def test_audit_beats_hand_tuned_on_new_processor(self, result):
        assert result.relative_droop("A-Res") >= 1.0

    def test_failure_ordering(self, result):
        vf = result.failure_voltages
        assert vf["A-Res"] >= vf["SM2"] >= vf["zeusmp"]

    def test_zeusmp_droop_comparable_to_sm2(self, result):
        assert 0.5 < result.relative_droop("zeusmp") < 1.6
