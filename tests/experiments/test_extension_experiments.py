"""Tests for the extension experiments: data values, simulator insights,
and the ablation studies."""

import pytest

from repro.experiments.ablations import (
    run_ga_budget_ablation,
    run_jitter_ablation,
    run_pdn_damping_ablation,
)
from repro.experiments.sec3_data_values import run_sec3_data_values
from repro.experiments.sec5_simulator_insights import run_sec5_simulator_insights
from repro.experiments.setup import bulldozer_testbed
from repro.isa.data_patterns import DataPattern
from repro.isa.opcodes import default_table

TABLE = default_table()


@pytest.fixture(scope="module")
def platform():
    return bulldozer_testbed()


class TestDataValues:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_sec3_data_values(platform, TABLE)

    def test_toggle_ordering(self, result):
        droops = result.droops
        assert droops[DataPattern.MAX_TOGGLE] > droops[DataPattern.RANDOM]
        assert droops[DataPattern.RANDOM] > droops[DataPattern.ZEROS]

    def test_swing_on_the_order_of_ten_percent(self, result):
        assert 0.04 < result.swing < 0.20


class TestSimulatorInsights:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_sec5_simulator_insights(platform, TABLE)

    def test_sm2_inverts_between_droop_and_failure_rank(self, result):
        assert "SM2" in result.rank_inversions
        assert result.droop_rank("SM2") > result.failure_rank("SM2")

    def test_zeusmp_droop_beats_sm2_but_fails_earlier(self, result):
        assert result.droops["zeusmp"] > result.droops["SM2"]
        assert (result.failure_voltages["zeusmp"]
                < result.failure_voltages["SM2"])

    def test_os_perturbation_spans_a_range(self, result):
        lo, hi = result.natural_droop_range
        assert hi > lo * 1.2


class TestAblations:
    def test_jitter_decoherence(self, platform):
        result = run_jitter_ablation(platform, TABLE, steps=(0, 2))
        assert result.droops_8t[2] < result.lockstep_8t
        assert result.droops_8t[2] < result.droop_4t

    def test_ga_budget_monotone(self, platform):
        result = run_ga_budget_ablation(platform, TABLE, budgets=(2, 6))
        assert result.droops[6] >= result.droops[2]
        assert result.evaluations[6] > result.evaluations[2]

    def test_pdn_damping_tracks_peak_impedance(self):
        result = run_pdn_damping_ablation(TABLE, esr_values=(0.2e-3, 0.8e-3))
        (esr_lo, peak_lo, a_lo, h_lo), (esr_hi, peak_hi, a_hi, h_hi) = result.rows
        assert esr_lo < esr_hi
        assert peak_lo > peak_hi
        assert a_lo > a_hi
        assert h_lo > h_hi
