"""Trace loading, tree reconstruction, analysis, and comparison."""

import json

import pytest

from repro.core.telemetry import (
    EvaluationEvent,
    FaultEvent,
    GenerationEvent,
    MeasurementStatsEvent,
    SpanEvent,
    StageEvent,
    SupervisorEvent,
    event_to_dict,
)
from repro.errors import ConfigurationError
from repro.obs.trace import (
    analyze_trace,
    build_tree,
    compare_traces,
    load_events,
    render_analysis,
    render_markdown,
)

TRACE = "t" * 16


def _span(name, span_id, parent_id="", *, t0=0.0, wall=1.0, status="ok",
          attrs=None, pid=100):
    return SpanEvent(
        name=name, trace_id=TRACE, span_id=span_id, parent_id=parent_id,
        t0_s=t0, wall_s=wall, status=status, attrs=attrs or {}, pid=pid,
    )


def _rows(*events):
    return [event_to_dict(event) for event in events]


def _write_trace(path, events):
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event)) + "\n")
    return path


class TestBuildTree:
    def test_simple_nesting(self):
        tree = build_tree(_rows(
            _span("root", "r1", t0=0.0, wall=10.0),
            _span("child", "c1", "r1", t0=1.0, wall=4.0),
            _span("child", "c2", "r1", t0=6.0, wall=3.0),
            _span("leaf", "l1", "c1", t0=2.0, wall=2.0),
        ))
        assert len(tree.roots) == 1
        assert tree.orphans == 0
        assert tree.lost == 0
        root = tree.roots[0]
        assert [c.span_id for c in root.children] == ["c1", "c2"]
        assert root.children[0].children[0].span_id == "l1"
        assert [n.span_id for n in tree.walk()] == ["r1", "c1", "l1", "c2"]

    def test_self_time_subtracts_children(self):
        tree = build_tree(_rows(
            _span("root", "r1", t0=0.0, wall=10.0),
            _span("child", "c1", "r1", t0=1.0, wall=4.0),
        ))
        assert tree.roots[0].self_s == pytest.approx(6.0)
        assert tree.roots[0].children[0].self_s == pytest.approx(4.0)

    def test_self_time_clamps_at_zero(self):
        # Lost/estimated spans can overlap; self time must not go negative.
        tree = build_tree(_rows(
            _span("root", "r1", t0=0.0, wall=1.0),
            _span("child", "c1", "r1", t0=0.0, wall=5.0),
        ))
        assert tree.roots[0].self_s == 0.0

    def test_orphan_is_adopted_under_the_primary_root_as_lost(self):
        tree = build_tree(_rows(
            _span("root", "r1", t0=0.0, wall=10.0),
            _span("stranded", "s1", "never-arrived", t0=2.0, wall=1.0),
        ))
        assert len(tree.roots) == 1
        assert tree.orphans == 1
        assert tree.lost == 1
        adopted = tree.roots[0].children[0]
        assert adopted.span_id == "s1"
        assert adopted.adopted is True
        assert adopted.status == "lost"

    def test_orphans_without_a_primary_root_stay_roots(self):
        tree = build_tree(_rows(
            _span("stranded", "s1", "gone", t0=0.0, wall=1.0),
            _span("stranded", "s2", "gone", t0=1.0, wall=1.0),
        ))
        assert len(tree.roots) == 2
        assert tree.orphans == 2

    def test_explicitly_lost_spans_count_without_adoption(self):
        tree = build_tree(_rows(
            _span("root", "r1", t0=0.0, wall=10.0),
            _span("worker.eval", "w1", "r1", status="lost"),
        ))
        assert tree.orphans == 0
        assert tree.lost == 1

    def test_children_sorted_by_open_time(self):
        tree = build_tree(_rows(
            _span("root", "r1", t0=0.0, wall=10.0),
            _span("late", "b", "r1", t0=5.0),
            _span("early", "a", "r1", t0=1.0),
        ))
        assert [c.name for c in tree.roots[0].children] == ["early", "late"]

    def test_empty_input(self):
        tree = build_tree([])
        assert tree.roots == []
        assert tree.orphans == 0


class TestLoadEvents:
    def test_loads_in_file_order_skipping_blanks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"kind": "generation", "generation": 0}) + "\n"
            + "\n"
            + json.dumps({"kind": "phase", "name": "ga"}) + "\n"
        )
        events = load_events(path)
        assert [e["kind"] for e in events] == ["generation", "phase"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"kind": "generation", "generation": 0}) + "\n"
            + '{"kind": "span", "name": "tru'  # writer was SIGKILLed here
        )
        events = load_events(path)
        assert len(events) == 1

    def test_malformed_middle_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"kind": "generation"}) + "\n"
            + "not json\n"
            + json.dumps({"kind": "phase"}) + "\n"
        )
        with pytest.raises(ConfigurationError, match="line 2"):
            load_events(path)

    def test_missing_file_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read trace"):
            load_events(tmp_path / "nope.jsonl")

    def test_non_dict_rows_are_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('[1, 2]\n{"kind": "phase"}\n')
        assert len(load_events(path)) == 1


def _campaign_events():
    """A miniature but fully-populated campaign trace."""
    return [
        _span("audit.campaign", "r1", t0=0.0, wall=20.0),
        _span("ga.generation", "g1", "r1", t0=1.0, wall=8.0,
              attrs={"generation": 0}),
        _span("engine.evaluate_batch", "b1", "g1", t0=2.0, wall=6.0),
        _span("worker.eval", "w1", "b1", t0=3.0, wall=2.0, pid=101),
        _span("worker.eval", "w2", "b1", status="lost", t0=5.0, wall=1.0,
              pid=102),
        _span("stranded.child", "s1", "never-flushed", t0=6.0, wall=0.5),
        EvaluationEvent(genome="g-a", fitness=0.04, wall_s=2.0, cached=False,
                        backend="supervised"),
        EvaluationEvent(genome="g-b", fitness=0.05, wall_s=1.5, cached=False,
                        backend="supervised"),
        EvaluationEvent(genome="g-a", fitness=0.04, wall_s=0.0, cached=True,
                        backend="supervised"),
        GenerationEvent(generation=0, best_fitness=0.05, mean_fitness=0.04,
                        evaluations_so_far=2, batch_size=2, batch_new=2,
                        wall_s=8.0),
        StageEvent(stage="pdn", wall_s=0.5, cache_hit=True),
        StageEvent(stage="activity", wall_s=0.2, cache_hit=False),
        FaultEvent(genome="g-c", error="hang", attempt=1, action="quarantine",
                   timeout=True),
        SupervisorEvent(action="hang-kill", task="g-c"),
        MeasurementStatsEvent(stats={"measurements": 2, "module_cache_hits": 1,
                                     "note": "ignored-non-numeric"}),
    ]


class TestAnalyzeTrace:
    @pytest.fixture()
    def analysis(self, tmp_path):
        return analyze_trace(
            _write_trace(tmp_path / "trace.jsonl", _campaign_events()))

    def test_event_and_span_rollups(self, analysis):
        assert analysis.events_by_kind["span"] == 6
        assert analysis.events_by_kind["evaluation"] == 3
        assert analysis.total_events == len(_campaign_events())
        assert analysis.span_counts["worker.eval"] == 2
        assert analysis.total_spans == 6

    def test_tree_is_single_rooted_with_losses_accounted(self, analysis):
        assert len(analysis.tree.roots) == 1
        assert analysis.tree.orphans == 1  # stranded.child
        assert analysis.tree.lost == 2  # the lost worker + the orphan

    def test_campaign_counters(self, analysis):
        assert analysis.evaluations == 2
        assert analysis.cache_hits == 1
        assert analysis.cache_hit_rate == pytest.approx(1 / 3)
        assert analysis.generations == 1
        assert analysis.eval_wall_s == pytest.approx(3.5)

    def test_cache_fault_and_platform_rollups(self, analysis):
        assert analysis.stage_cache_hits == {"pdn": 1}
        assert analysis.faults == {"quarantine": 1}
        assert analysis.supervisor_actions == {"hang-kill": 1}
        assert analysis.platform_stats == {"measurements": 2,
                                           "module_cache_hits": 1}

    def test_trace_wall_is_the_root_wall(self, analysis):
        assert analysis.trace_wall_s == pytest.approx(20.0)

    def test_hot_spans_ranked_by_self_time(self, analysis):
        names = [name for name, *_ in analysis.hot_spans]
        assert names[0] == "audit.campaign"  # 20 - 8 = 12s self
        assert set(names) <= set(analysis.span_counts)

    def test_deterministic_counts_cover_the_gating_surface(self, analysis):
        counts = analysis.deterministic_counts()
        assert counts["events.span"] == 6
        assert counts["spans.worker.eval"] == 2
        assert counts["evaluations"] == 2
        assert counts["cache_hits"] == 1
        assert counts["generations"] == 1
        assert counts["spans.lost"] == 2
        assert counts["spans.orphaned"] == 1
        assert not any(key.endswith("_s") for key in counts)

    def test_metrics_projection(self, analysis):
        registry = analysis.metrics()
        assert registry.counter("events.generation") == 1
        assert registry.counter("spans.worker.eval") == 2
        assert registry.counter("spans.lost") == 2
        assert registry.counter("engine.evaluations") == 2
        histogram = registry.histogram("span.worker.eval.wall_s")
        assert histogram is not None
        assert histogram.count == 2


class TestRendering:
    @pytest.fixture()
    def analysis(self, tmp_path):
        return analyze_trace(
            _write_trace(tmp_path / "trace.jsonl", _campaign_events()))

    def test_text_report_sections(self, analysis):
        text = render_analysis(analysis)
        assert "trace overview" in text
        assert "self time per span kind" in text
        assert "hot spans" in text
        assert "cache rollup" in text
        assert "fault rollup" in text
        assert "worker.eval" in text

    def test_top_limits_the_hot_span_table(self, analysis):
        text = render_analysis(analysis, top=1)
        assert "top 1 hot spans" in text

    def test_markdown_report(self, analysis):
        markdown = render_markdown(analysis, title="Telemetry report: nightly")
        assert markdown.startswith("# Telemetry report: nightly\n")
        assert "## Self time per span kind" in markdown
        assert "| span | count | total (s) | self (s) |" in markdown
        assert "- supervisor/hang-kill: 1" in markdown
        assert "(2 lost, 1 orphaned)" in markdown

    def test_spanless_trace_renders_without_tables(self, tmp_path):
        path = _write_trace(tmp_path / "flat.jsonl", [
            GenerationEvent(generation=0, best_fitness=0.0, mean_fitness=0.0,
                            evaluations_so_far=0, batch_size=0, batch_new=0,
                            wall_s=0.1),
        ])
        analysis = analyze_trace(path)
        text = render_analysis(analysis)
        assert "self time per span kind" not in text
        markdown = render_markdown(analysis)
        assert "## Self time" not in markdown


class TestCompareTraces:
    def test_identical_traces_compare_ok(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", _campaign_events())
        b = _write_trace(tmp_path / "b.jsonl", _campaign_events())
        comparison = compare_traces(a, b)
        assert comparison.ok
        assert "OK" in comparison.render()
        assert "MISMATCH" not in comparison.render()

    def test_count_drift_is_a_mismatch(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", _campaign_events())
        events = _campaign_events()
        events.append(EvaluationEvent(genome="g-z", fitness=0.01, wall_s=1.0,
                                      cached=False, backend="serial"))
        b = _write_trace(tmp_path / "b.jsonl", events)
        comparison = compare_traces(a, b)
        assert not comparison.ok
        mismatched = {key for key, *_ in comparison.mismatches}
        assert "evaluations" in mismatched
        assert "events.evaluation" in mismatched
        assert "MISMATCH" in comparison.render()

    def test_timing_drift_alone_is_not_a_mismatch(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", _campaign_events())
        slower = [
            _span("audit.campaign", "r1", t0=0.0, wall=40.0)
            if isinstance(e, SpanEvent) and e.span_id == "r1" else e
            for e in _campaign_events()
        ]
        b = _write_trace(tmp_path / "b.jsonl", slower)
        comparison = compare_traces(a, b)
        assert comparison.ok
        rows = comparison.rows()
        ratio_row = next(r for r in rows if r[0] == "self_s.audit.campaign")
        assert ratio_row[3].endswith("x")
