"""Cross-process trace coherence: pools, chaos, and lost spans.

The acceptance test for the observability layer: a ``--workers``-style
campaign whose workers hang and abort (and whose pool is killed and
respawned) must still yield ONE coherent span tree — worker spans nest
under the parent's batch spans, and a SIGKILLed worker's in-flight span
appears as a ``status="lost"`` leaf instead of a dangling parent id.
"""

import os

import pytest

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.engine import EvaluationEngine, make_executor
from repro.core.faults import (
    FaultInjectingBackend,
    FaultInjectionConfig,
    FaultPolicy,
)
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.core.telemetry import JsonlObserver, SpanEvent, TelemetryCollector
from repro.experiments.setup import bulldozer_testbed
from repro.obs import Tracer, analyze_trace, build_tree, tracing
from repro.obs.spans import SpanBuffer

#: Hash-targeted hard-fault rates: deterministic per genome, so a given
#: seed yields the same chaos schedule in every run and on every respawn.
CHAOS = FaultInjectionConfig(
    seed=2,
    abort_rate=0.18,
    hang_forever_rate=0.12,
    hang_forever_s=3600.0,
)

CONFIG = AuditConfig(
    threads=2,
    mode=StressmarkMode.RESONANT,
    ga=GaConfig(population_size=8, generations=2, seed=5),
)


# Module-level so worker processes can rebuild the chaotic platform.
def chaotic_platform():
    return MeasurementPlatform(
        backend=FaultInjectingBackend(bulldozer_testbed().backend,
                                      config=CHAOS)
    )


def _tiny_platform():
    from repro.pdn.elements import bulldozer_pdn
    from repro.uarch.config import bulldozer_chip

    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


class TestWorkerSpanPropagation:
    def test_parallel_engine_ships_worker_spans_back(self):
        import numpy as np

        from repro.core.genome import GenomeSpace
        from repro.isa.opcodes import default_table

        space = GenomeSpace(table=default_table(), slots=4, replications=1,
                            lp_nops_min=0, lp_nops_max=16)
        rng = np.random.default_rng(0)
        genomes = [space.random_genome(rng) for _ in range(4)]
        buffer = SpanBuffer()
        tracer = Tracer([buffer])
        executor = make_executor(2)
        engine = EvaluationEngine.for_stressmarks(
            _tiny_platform(), space, threads=2, executor=executor,
            platform_factory=_tiny_platform,
        )
        try:
            with tracing(tracer):
                engine.evaluate_many(genomes)
        finally:
            executor.close()
        worker_spans = [e for e in buffer.records if e.name == "worker.eval"]
        assert len(worker_spans) == len(genomes)
        # Recorded in the pool, not in this process.
        assert all(e.pid != os.getpid() for e in worker_spans)
        assert all(e.trace_id == tracer.trace_id for e in worker_spans)
        # They nest under this process's engine.evaluate_batch span.
        batch = next(e for e in buffer.records
                     if e.name == "engine.evaluate_batch")
        assert {e.parent_id for e in worker_spans} == {batch.span_id}


@pytest.mark.slow
class TestChaosCampaignTrace:
    def test_chaos_campaign_yields_one_coherent_tree(self, tmp_path):
        trace_path = tmp_path / "chaos.jsonl"
        collector = TelemetryCollector()
        jsonl = JsonlObserver(trace_path, flush_every=16)
        observers = [collector, jsonl]
        tracer = Tracer(observers)
        from repro.supervision import SupervisedExecutor

        executor = SupervisedExecutor(
            2,
            task_timeout_s=3.0,
            max_pool_rebuilds=30,
            poll_s=0.05,
            observers=[collector],
        )
        # The parent keeps a clean platform (resonance hunt and final
        # verification run in-process); only workers see the chaos.
        runner = AuditRunner(
            bulldozer_testbed(),
            config=CONFIG,
            executor=executor,
            observers=observers,
            platform_factory=chaotic_platform,
            fault_policy=FaultPolicy(max_retries=0, on_exhaust="skip"),
        )
        try:
            with tracing(tracer):
                result = runner.run()
        finally:
            executor.close()
            jsonl.close()
        assert result.max_droop_v > 0
        # The chaos actually happened: workers were killed mid-span.
        assert collector.supervisor_hangs + collector.supervisor_crashes >= 1

        analysis = analyze_trace(trace_path)
        tree = analysis.tree
        # ONE rooted tree, no dangling parent ids, despite kills/respawns.
        assert len(tree.roots) == 1
        assert tree.roots[0].name == "audit.campaign"
        assert tree.orphans == 0
        # Killed workers' spans were closed on their behalf as "lost".
        assert tree.lost >= 1
        assert collector.spans_lost >= 1
        lost = [n for n in tree.walk() if n.status == "lost"]
        assert all(n.name == "worker.eval" for n in lost)
        # Surviving workers' spans made it back across the pickle with
        # their worker pids intact.
        worker_pids = {n.pid for n in tree.walk() if n.name == "worker.eval"}
        assert worker_pids - {os.getpid()}
        # Every span in the file belongs to the one trace.
        from repro.obs.trace import load_events

        rows = [r for r in load_events(trace_path) if r.get("kind") == "span"]
        assert {r["trace_id"] for r in rows} == {tracer.trace_id}

    def test_lost_span_events_reach_observers_at_kill_time(self):
        # Cheap check of the emit path: a SupervisorFault outcome makes
        # the engine close the worker's span as lost in the parent.
        from repro.supervision.executor import SupervisorFault

        events: list = []

        class Sink:
            def on_event(self, event):
                events.append(event)

        tracer = Tracer([Sink()])
        engine = EvaluationEngine(
            lambda g: 0.0,
            fault_policy=FaultPolicy(max_retries=0, on_exhaust="skip"),
        )
        fault = SupervisorFault(kind="hang", error="deadline", wall_s=3.0,
                                attempts=1)
        with tracing(tracer):
            outcome = engine._resolve_supervised("genome-x", fault)
        assert outcome.value is None
        lost = [e for e in events
                if isinstance(e, SpanEvent) and e.status == "lost"]
        assert len(lost) == 1
        assert lost[0].name == "worker.eval"
        assert lost[0].attrs["fault"] == "hang"
        assert lost[0].wall_s == pytest.approx(3.0)

    def test_orphaned_rows_from_a_dead_flush_still_build_one_tree(self):
        # Backstop path: even if lost-closure never ran (parent also died
        # between flushes), the loader adopts strays under the root.
        tracer_rows = [
            {"kind": "span", "name": "audit.campaign", "trace_id": "t",
             "span_id": "root", "parent_id": "", "t0_s": 0.0, "wall_s": 30.0,
             "status": "ok", "attrs": {}, "pid": 1},
            {"kind": "span", "name": "pipeline.pdn_solve", "trace_id": "t",
             "span_id": "stray", "parent_id": "died-with-worker",
             "t0_s": 4.0, "wall_s": 0.2, "status": "ok", "attrs": {},
             "pid": 999},
        ]
        tree = build_tree(tracer_rows)
        assert len(tree.roots) == 1
        assert tree.orphans == 1
        stray = tree.roots[0].children[0]
        assert stray.status == "lost"
