"""The ``repro telemetry`` command family, end to end.

One tiny seeded audit campaign produces the JSONL trace all the command
tests share; ``analyze``/``export`` render it, ``compare --check`` gates
a replay of the same campaign against it.
"""

import json

import pytest

from repro.cli import build_parser, main

AUDIT = ["audit", "--threads", "2", "--population", "6",
         "--generations", "2", "--seed", "1"]


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "trace.jsonl"
    assert main([*AUDIT, "--telemetry-out", str(path)]) == 0
    return path


class TestParser:
    def test_telemetry_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["telemetry", "analyze", "t.jsonl"])
        assert args.trace == "t.jsonl"
        assert args.top == 10
        assert args.md is False

    def test_compare_check_flag(self):
        args = build_parser().parse_args(
            ["telemetry", "compare", "a.jsonl", "b.jsonl", "--check"])
        assert args.baseline == "a.jsonl"
        assert args.current == "b.jsonl"
        assert args.check is True

    def test_export_flags(self):
        args = build_parser().parse_args(
            ["telemetry", "export", "t.jsonl", "--md-out", "out.md",
             "--campaign", "nightly", "--top", "3"])
        assert args.md_out == "out.md"
        assert args.campaign == "nightly"
        assert args.top == 3


class TestAnalyze:
    def test_audit_trace_is_a_single_rooted_span_tree(self, trace, capsys):
        assert main(["telemetry", "analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace overview" in out
        assert "span tree roots" in out
        assert "audit.campaign" in out
        assert "ga.generation" in out
        assert "pipeline.measure" in out

    def test_no_orphaned_or_lost_spans_in_a_clean_run(self, trace):
        from repro.obs import analyze_trace

        analysis = analyze_trace(trace)
        assert len(analysis.tree.roots) == 1
        assert analysis.tree.orphans == 0
        assert analysis.tree.lost == 0
        assert analysis.generations == 2
        assert analysis.evaluations > 0

    def test_markdown_mode(self, trace, capsys):
        assert main(["telemetry", "analyze", str(trace), "--md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Telemetry report")
        assert "## Self time per span kind" in out

    def test_missing_trace_exits_config(self, tmp_path, capsys):
        code = main(["telemetry", "analyze", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "configuration error" in capsys.readouterr().err


class TestCompare:
    def test_replay_of_the_same_seed_gates_clean(self, trace, tmp_path,
                                                 capsys):
        replay = tmp_path / "replay.jsonl"
        assert main([*AUDIT, "--telemetry-out", str(replay)]) == 0
        capsys.readouterr()
        code = main(["telemetry", "compare", str(trace), str(replay),
                     "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace comparison: OK" in out
        assert "MISMATCH" not in out

    def test_divergent_trace_fails_the_check(self, trace, tmp_path, capsys):
        doctored = tmp_path / "doctored.jsonl"
        lines = trace.read_text().splitlines()
        kept_one_generation = [
            line for line in lines
            if json.loads(line).get("kind") != "generation"
        ][: len(lines) - 1]
        doctored.write_text("\n".join(kept_one_generation) + "\n")
        code = main(["telemetry", "compare", str(trace), str(doctored),
                     "--check"])
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_without_check_mismatches_only_report(self, trace, tmp_path,
                                                  capsys):
        doctored = tmp_path / "doctored.jsonl"
        doctored.write_text(trace.read_text().splitlines()[0] + "\n")
        code = main(["telemetry", "compare", str(trace), str(doctored)])
        assert code == 0
        assert "MISMATCH" in capsys.readouterr().out


class TestExport:
    def test_writes_markdown_with_campaign_title(self, trace, tmp_path,
                                                 capsys):
        out_path = tmp_path / "telemetry.md"
        code = main(["telemetry", "export", str(trace),
                     "--md-out", str(out_path), "--campaign", "nightly"])
        assert code == 0
        assert "telemetry report written to" in capsys.readouterr().out
        markdown = out_path.read_text()
        assert markdown.startswith("# Telemetry report: nightly\n")
        assert "## Self time per span kind" in markdown

    def test_prints_to_stdout_without_md_out(self, trace, capsys):
        assert main(["telemetry", "export", str(trace)]) == 0
        assert capsys.readouterr().out.startswith("# Telemetry report\n")


class TestAuditTelemetrySummary:
    def test_telemetry_flag_reports_trace_spans(self, capsys):
        # --telemetry (no JSONL sink) still installs the tracer, so the
        # run summary counts the spans the campaign emitted.
        assert main([*AUDIT, "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "trace spans" in out
