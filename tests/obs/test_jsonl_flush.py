"""JsonlObserver buffering and the SIGTERM-drain flush regression.

A buffered JSONL observer must never lose events to its in-memory
buffer when a graceful shutdown begins: the :class:`ShutdownCoordinator`
flushes every flushable observer the moment it announces a drain, and
again when it uninstalls — so a ``--max-wall-clock`` stop (or SIGTERM)
leaves a complete trace on disk even if the process dies before the
CLI's ``finally`` runs.
"""

import json

import pytest

from repro.core.telemetry import JsonlObserver, PhaseEvent
from repro.supervision.shutdown import ShutdownCoordinator


def _events(n):
    return [PhaseEvent(name=f"phase-{i}", wall_s=float(i)) for i in range(n)]


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestBuffering:
    def test_default_is_unbuffered(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = JsonlObserver(path)
        observer.on_event(_events(1)[0])
        assert len(_lines(path)) == 1

    def test_buffered_events_stay_in_memory_until_the_threshold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = JsonlObserver(path, flush_every=4)
        for event in _events(3):
            observer.on_event(event)
        assert path.read_text() == ""
        observer.on_event(PhaseEvent(name="fourth", wall_s=0.0))
        assert len(_lines(path)) == 4

    def test_flush_drains_a_partial_buffer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = JsonlObserver(path, flush_every=64)
        for event in _events(5):
            observer.on_event(event)
        observer.flush()
        assert len(_lines(path)) == 5
        observer.flush()  # idempotent on an empty buffer
        assert len(_lines(path)) == 5

    def test_close_flushes_and_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlObserver(path, flush_every=64) as observer:
            for event in _events(3):
                observer.on_event(event)
        assert len(_lines(path)) == 3

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlObserver(tmp_path / "trace.jsonl", flush_every=0)

    def test_wrapped_stream_is_not_closed(self):
        import io

        stream = io.StringIO()
        observer = JsonlObserver(stream, flush_every=8)
        observer.on_event(_events(1)[0])
        observer.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["kind"] == "phase"


class TestShutdownDrainFlush:
    def test_drain_announce_flushes_buffered_observers(self, tmp_path):
        # Regression: a SIGTERM landing mid-generation used to leave the
        # last generation's events in the JSONL buffer; the coordinator
        # now flushes on the first drain announcement.
        path = tmp_path / "trace.jsonl"
        observer = JsonlObserver(path, flush_every=64)
        coordinator = ShutdownCoordinator(observers=[observer])
        for event in _events(7):
            observer.on_event(event)
        assert path.read_text() == ""  # still buffered
        coordinator.request("signal SIGTERM")
        assert coordinator.stop_requested() == "signal SIGTERM"
        rows = _lines(path)
        # The 7 buffered events plus the shutdown SupervisorEvent itself.
        assert len(rows) == 8
        assert rows[-1]["kind"] == "supervisor"
        assert rows[-1]["action"] == "shutdown"

    def test_coordinator_exit_flushes_late_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = JsonlObserver(path, flush_every=64)
        with ShutdownCoordinator(observers=[observer]):
            for event in _events(3):
                observer.on_event(event)
        assert len(_lines(path)) == 3

    def test_wall_clock_budget_drain_also_flushes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = JsonlObserver(path, flush_every=64)
        coordinator = ShutdownCoordinator(max_wall_clock_s=0.0,
                                          observers=[observer])
        observer.on_event(_events(1)[0])
        reason = coordinator.stop_requested()
        assert reason is not None and "wall-clock" in reason
        assert any(row["kind"] == "phase" for row in _lines(path))

    def test_observers_without_flush_are_tolerated(self):
        class Plain:
            def on_event(self, event):
                pass

        coordinator = ShutdownCoordinator(observers=[Plain()])
        coordinator.flush_observers()  # must not raise
