"""Metrics registry conformance: merge semantics and serialization.

The registry's one job is an order-independent merge: counters sum,
gauges keep the max, histograms add bucket-wise.  The property tests
fold randomly partitioned observation streams in random orders and
demand identical results; the projection tests pin the
``MeasurementStats``/``PipelineCounters`` round-trips that route the
legacy ad-hoc merges through the registry.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import MeasurementStats
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.pipeline.stages import PipelineCounters

DURATIONS = st.floats(min_value=0.0, max_value=500.0,
                      allow_nan=False, allow_infinity=False)


class TestHistogram:
    def test_observe_tracks_sum_count_min_max(self):
        histogram = Histogram()
        for value in (0.002, 0.3, 7.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(7.302)
        assert histogram.min_value == 0.002
        assert histogram.max_value == 7.0
        assert histogram.mean == pytest.approx(7.302 / 3)

    def test_empty_histogram_is_quiet(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_quantiles_are_clamped_to_observed_range(self):
        histogram = Histogram()
        values = [0.01, 0.02, 0.04, 0.08, 0.2, 0.4, 1.5, 4.0]
        for value in values:
            histogram.observe(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            estimate = histogram.quantile(q)
            assert min(values) <= estimate <= max(values)
        assert histogram.quantile(1.0) == pytest.approx(max(values))

    def test_quantile_rejects_out_of_range(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_overflow_above_last_bound_is_counted(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.counts == [0, 0, 1]
        assert histogram.quantile(0.5) == pytest.approx(99.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 2.0)).merge(Histogram(bounds=(1.0, 3.0)))

    def test_dict_round_trip(self):
        histogram = Histogram()
        for value in (0.001, 0.02, 3.0, 70.0):
            histogram.observe(value)
        clone = Histogram.from_dict(json.loads(json.dumps(histogram.to_dict())))
        assert clone.to_dict() == histogram.to_dict()
        assert clone.quantile(0.95) == pytest.approx(histogram.quantile(0.95))

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(DURATIONS, max_size=50),
           split=st.integers(min_value=0, max_value=50))
    def test_merge_equals_observing_everything(self, values, split):
        split = min(split, len(values))
        combined = Histogram()
        for value in values:
            combined.observe(value)
        left, right = Histogram(), Histogram()
        for value in values[:split]:
            left.observe(value)
        for value in values[split:]:
            right.observe(value)
        left.merge(right)
        merged, expected = left.to_dict(), combined.to_dict()
        # Summing floats in a different association drifts the last bit
        # of `total`; every structural field must be exact.
        assert merged.pop("total") == pytest.approx(expected.pop("total"))
        assert merged == expected


def _sample_registry(seed: int) -> MetricsRegistry:
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for name in ("a", "b", "c"):
        registry.inc(name, rng.randint(0, 5))
    registry.gauge_set("peak", rng.uniform(0, 10))
    for _ in range(rng.randint(0, 8)):
        registry.observe("wall_s", rng.uniform(0, 100))
    return registry


class TestMetricsRegistry:
    def test_counters_sum_and_default(self):
        registry = MetricsRegistry()
        registry.inc("evals")
        registry.inc("evals", 4)
        assert registry.counter("evals") == 5
        assert registry.counter("missing") == 0
        assert registry.counter("missing", default=-1) == -1

    def test_gauges_keep_the_maximum_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge_set("rss", 10.0)
        b.gauge_set("rss", 7.0)
        b.gauge_set("only_b", 3.0)
        a.merge(b)
        assert a.gauge("rss") == 10.0
        assert a.gauge("only_b") == 3.0
        assert a.gauge("missing") is None

    def test_names_spans_all_three_families(self):
        registry = MetricsRegistry()
        registry.inc("counter")
        registry.gauge_set("gauge", 1.0)
        registry.observe("histogram", 0.5)
        assert registry.names() == ("counter", "gauge", "histogram")

    def test_merge_returns_self_for_chaining(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        assert a.merge(b) is a

    def test_merge_copies_histograms_it_adopts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("wall_s", 1.0)
        a.merge(b)
        a.observe("wall_s", 2.0)
        assert b.histogram("wall_s").count == 1
        assert a.histogram("wall_s").count == 2

    def test_dict_round_trip_through_json(self):
        registry = _sample_registry(7)
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict())))
        assert clone.to_dict() == registry.to_dict()

    def test_summary_rows_render_quantiles(self):
        registry = MetricsRegistry()
        registry.inc("evals", 3)
        registry.gauge_set("peak", 2.5)
        for value in (0.01, 0.02, 0.03):
            registry.observe("wall_s", value)
        rendered = dict(registry.summary_rows())
        assert rendered["evals"] == 3
        assert rendered["peak (gauge)"] == "2.5"
        assert "p50=" in rendered["wall_s"]
        assert "p95=" in rendered["wall_s"]
        assert "p99=" in rendered["wall_s"]

    @settings(max_examples=40, deadline=None)
    @given(seeds=st.lists(st.integers(min_value=0, max_value=99),
                          min_size=1, max_size=6),
           order=st.randoms(use_true_random=False))
    def test_merge_is_order_independent(self, seeds, order):
        forward = MetricsRegistry()
        for seed in seeds:
            forward.merge(_sample_registry(seed))
        shuffled = list(seeds)
        order.shuffle(shuffled)
        backward = MetricsRegistry()
        for seed in shuffled:
            backward.merge(_sample_registry(seed))
        a, b = forward.to_dict(), backward.to_dict()
        # Counters and gauges are ints/maxes (exact); histogram totals sum
        # floats in merge order, so compare those to within rounding.
        assert a["counters"] == pytest.approx(b["counters"])
        assert a["gauges"] == b["gauges"]
        assert set(a["histograms"]) == set(b["histograms"])
        for name, blob in a["histograms"].items():
            other = b["histograms"][name]
            assert blob["counts"] == other["counts"]
            assert blob["count"] == other["count"]
            assert blob["min"] == other["min"]
            assert blob["max"] == other["max"]
            assert blob["total"] == pytest.approx(other["total"])


class TestMeasurementStatsProjection:
    def _stats(self, scale: int) -> MeasurementStats:
        return MeasurementStats(
            measurements=3 * scale,
            module_runs=2 * scale,
            module_cache_hits=scale,
            sim_time_s=0.5 * scale,
            pdn_time_s=0.25 * scale,
            periodic_measurements=scale,
            jittered_measurements=scale,
            transient_measurements=scale,
            profile_cache_hits=scale,
            pdn_cache_hits=scale,
            batched_solves=scale,
            batched_rows=4 * scale,
            stage_compile_s=0.1 * scale,
            stage_activity_s=0.2 * scale,
            stage_pdn_s=0.3 * scale,
            stage_analyze_s=0.4 * scale,
        )

    def test_round_trip_preserves_fields_and_types(self):
        stats = self._stats(3)
        clone = MeasurementStats.from_metrics(stats.to_metrics())
        assert clone == stats
        assert isinstance(clone.measurements, int)
        assert isinstance(clone.sim_time_s, float)

    def test_merge_sums_via_the_registry(self):
        merged = self._stats(1).merge(self._stats(2))
        assert merged == self._stats(3)

    def test_counter_names_are_namespaced(self):
        registry = self._stats(1).to_metrics()
        assert registry.counter("platform.measurements") == 3
        assert all(name.startswith("platform.") for name in registry.names())


class TestPipelineCountersProjection:
    def _counters(self, scale: int) -> PipelineCounters:
        counters = PipelineCounters()
        counters.measurements = 2 * scale
        counters.pdn_time_s = 0.5 * scale
        counters.profile_cache_hits = scale
        counters.pdn_cache_hits = scale
        counters.batched_solves = scale
        counters.batched_rows = 3 * scale
        counters.path_counts = {"periodic": scale, "jittered": 0,
                                "transient": scale}
        counters.stage_wall_s = {"compile": 0.1 * scale, "pdn": 0.2 * scale}
        return counters

    def test_round_trip_preserves_every_field(self):
        counters = self._counters(2)
        clone = PipelineCounters.from_metrics(counters.to_metrics())
        assert clone.measurements == counters.measurements
        assert clone.pdn_time_s == pytest.approx(counters.pdn_time_s)
        assert clone.path_counts == counters.path_counts
        assert clone.stage_wall_s == pytest.approx(counters.stage_wall_s)
        assert isinstance(clone.measurements, int)
        assert isinstance(clone.path_counts["periodic"], int)

    def test_merge_sums_paths_and_stage_walls(self):
        merged = self._counters(1).merge(self._counters(2))
        expected = self._counters(3)
        assert merged.measurements == expected.measurements
        assert merged.path_counts == expected.path_counts
        assert merged.stage_wall_s == pytest.approx(expected.stage_wall_s)
        assert merged.batched_rows == expected.batched_rows

    def test_counter_names_are_namespaced(self):
        registry = self._counters(1).to_metrics()
        assert registry.counter("pipeline.measurements") == 2
        assert registry.counter("pipeline.path.periodic") == 1
        assert registry.counter("pipeline.stage_wall_s.pdn") == pytest.approx(0.2)
