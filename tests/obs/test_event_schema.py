"""Golden-schema conformance tests for every telemetry event kind.

The telemetry stream is a wire format: JSONL traces written by one
version of the code are analyzed (and CI-gated) by another.  These tests
pin the schema of every event kind — field names, field types, JSON
round-trip — so a field rename or type change fails loudly here instead
of silently corrupting trace analysis.  ``EVENT_TYPES`` is the registry
the trace loader uses; a new event kind cannot ship without a golden
entry below.
"""

import dataclasses
import json

import pytest

from repro.core.telemetry import (
    EVENT_TYPES,
    CheckpointEvent,
    EvaluationEvent,
    FaultEvent,
    FleetEvent,
    GenerationEvent,
    InvariantEvent,
    MeasurementStatsEvent,
    PhaseEvent,
    QualificationEvent,
    RegistryEvent,
    ShardEvent,
    SpanEvent,
    StageEvent,
    SupervisorEvent,
    TelemetryEvent,
    event_from_dict,
    event_to_dict,
)

#: The golden schema: kind -> ordered {field name: annotated type}.
#: Changing an event dataclass without updating this table is a
#: conformance failure by design.
GOLDEN_SCHEMAS = {
    "evaluation": {
        "genome": "str", "fitness": "float", "wall_s": "float",
        "cached": "bool", "backend": "str",
    },
    "generation": {
        "generation": "int", "best_fitness": "float", "mean_fitness": "float",
        "evaluations_so_far": "int", "batch_size": "int", "batch_new": "int",
        "wall_s": "float",
    },
    "phase": {"name": "str", "wall_s": "float", "detail": "str"},
    "fault": {
        "genome": "str", "error": "str", "attempt": "int", "action": "str",
        "timeout": "bool",
    },
    "checkpoint": {"generation": "int", "path": "str", "wall_s": "float"},
    "invariant": {
        "guard": "str", "layer": "str", "error": "str", "genome": "str",
    },
    "stage": {
        "stage": "str", "wall_s": "float", "cache_hit": "bool",
        "batched": "bool", "path": "str", "detail": "str",
    },
    "platform-stats": {"stats": "dict", "source": "str"},
    "supervisor": {
        "action": "str", "task": "str", "detail": "str", "respawns": "int",
        "wall_s": "float",
    },
    "shard": {
        "scenario": "str", "status": "str", "droop_v": "float",
        "evaluations": "int", "wall_s": "float", "error": "str",
        "exit_code": "int",
    },
    "fleet": {
        "total": "int", "done": "int", "failed": "int", "running": "int",
        "wall_s": "float", "detail": "str",
    },
    "qualification": {
        "stressmark": "str", "axis": "str", "samples": "int",
        "min_droop_v": "float", "max_droop_v": "float", "retention": "float",
        "verdict": "str", "wall_s": "float",
    },
    "registry": {
        "action": "str", "record_id": "str", "path": "str", "detail": "str",
        "deduped": "bool", "wall_s": "float",
    },
    "span": {
        "name": "str", "trace_id": "str", "span_id": "str", "parent_id": "str",
        "t0_s": "float", "wall_s": "float", "status": "str", "attrs": "dict",
        "pid": "int",
    },
}

#: One fully-populated sample per kind (no field left at its default), so
#: the round-trip tests exercise every field.
SAMPLES = {
    "evaluation": EvaluationEvent(
        genome="g1", fitness=0.042, wall_s=1.5, cached=True, backend="serial"),
    "generation": GenerationEvent(
        generation=3, best_fitness=0.05, mean_fitness=0.03,
        evaluations_so_far=72, batch_size=24, batch_new=20, wall_s=8.2),
    "phase": PhaseEvent(name="resonance-sweep", wall_s=2.5, detail="21 points"),
    "fault": FaultEvent(
        genome="g2", error="boom", attempt=2, action="quarantine", timeout=True),
    "checkpoint": CheckpointEvent(generation=4, path="c/state.json", wall_s=0.01),
    "invariant": InvariantEvent(
        guard="voltage-finite", layer="platform", error="NaN", genome="g3"),
    "stage": StageEvent(
        stage="pdn", wall_s=0.2, cache_hit=True, batched=True,
        path="periodic", detail="fallback"),
    "platform-stats": MeasurementStatsEvent(
        stats={"measurements": 7, "sim_time_s": 1.25}, source="workers"),
    "supervisor": SupervisorEvent(
        action="hang-kill", task="g4", detail="deadline", respawns=2, wall_s=3.0),
    "shard": ShardEvent(
        scenario="bulldozer-4t", status="failed", droop_v=0.081,
        evaluations=48, wall_s=12.5, error="crash", exit_code=70),
    "fleet": FleetEvent(
        total=8, done=5, failed=1, running=2, wall_s=60.0, detail="draining"),
    "qualification": QualificationEvent(
        stressmark="a-res", axis="jitter", samples=4, min_droop_v=0.07,
        max_droop_v=0.08, retention=0.92, verdict="PASS", wall_s=4.5),
    "registry": RegistryEvent(
        action="publish", record_id="abc123", path="library/", detail="new",
        deduped=True, wall_s=0.2),
    "span": SpanEvent(
        name="ga.generation", trace_id="t" * 16, span_id="s" * 16,
        parent_id="p" * 16, t0_s=100.5, wall_s=2.25, status="lost",
        attrs={"generation": 3, "path": "periodic"}, pid=4242),
}


class TestRegistry:
    def test_every_kind_has_a_golden_schema(self):
        assert set(EVENT_TYPES) == set(GOLDEN_SCHEMAS)

    def test_every_kind_has_a_sample(self):
        assert set(EVENT_TYPES) == set(SAMPLES)

    def test_union_matches_registry(self):
        # The TelemetryEvent union and EVENT_TYPES must not drift apart:
        # the union is what observers type against, the registry is what
        # the trace loader rebuilds from.
        assert set(TelemetryEvent.__args__) == set(EVENT_TYPES.values())

    def test_kind_tags_are_consistent(self):
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind

    def test_all_events_are_frozen(self):
        for event in SAMPLES.values():
            with pytest.raises(dataclasses.FrozenInstanceError):
                event.kind = "tampered"


@pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
class TestGoldenSchema:
    def test_field_names_and_types(self, kind):
        fields = dataclasses.fields(EVENT_TYPES[kind])
        observed = {spec.name: str(spec.type) for spec in fields}
        assert observed == GOLDEN_SCHEMAS[kind], (
            f"schema drift on kind={kind!r}: update GOLDEN_SCHEMAS (and the "
            f"trace analyzer) deliberately, not by accident"
        )

    def test_sample_populates_every_field(self, kind):
        event = SAMPLES[kind]
        for spec in dataclasses.fields(event):
            value = getattr(event, spec.name)
            if spec.default is not dataclasses.MISSING:
                assert value != spec.default, (
                    f"{kind}.{spec.name} sample left at default; the "
                    f"round-trip test would not exercise it"
                )

    def test_dict_round_trip(self, kind):
        event = SAMPLES[kind]
        payload = event_to_dict(event)
        assert payload["kind"] == kind
        assert event_from_dict(payload) == event

    def test_json_round_trip(self, kind):
        event = SAMPLES[kind]
        line = json.dumps(event_to_dict(event))
        assert event_from_dict(json.loads(line)) == event

    def test_json_payload_is_flat_primitives(self, kind):
        # Every value must survive JSON without type drift (no tuples,
        # sets, or custom objects) so the JSONL trace is self-describing.
        payload = json.loads(json.dumps(event_to_dict(SAMPLES[kind])))
        assert payload == event_to_dict(SAMPLES[kind])


class TestFromDict:
    def test_unknown_keys_are_dropped(self):
        payload = event_to_dict(SAMPLES["phase"])
        payload["added_in_a_future_version"] = 17
        assert event_from_dict(payload) == SAMPLES["phase"]

    def test_unknown_kind_raises_key_error(self):
        with pytest.raises(KeyError):
            event_from_dict({"kind": "no-such-kind"})

    def test_payload_is_not_mutated(self):
        payload = event_to_dict(SAMPLES["span"])
        copy = dict(payload)
        event_from_dict(payload)
        assert payload == copy
