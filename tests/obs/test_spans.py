"""Tracer conformance: nesting, propagation, and loss semantics.

The property tests drive the tracer with a deterministic fake clock so
wall times are exact integers: any interleaving of span opens and closes
must produce a tree with no orphans, exactly one event per opened span,
and self-times that sum to the root's wall time.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import EvalOutcome
from repro.core.telemetry import SpanEvent
from repro.obs.spans import (
    NULL_SPAN,
    SpanBuffer,
    TraceContext,
    TracedTask,
    Tracer,
    adopt,
    current_tracer,
    install_tracer,
    new_id,
    span,
    tracing,
)
from repro.obs.trace import build_tree


class FakeClock:
    """A monotonic clock that advances by one unit per reading."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class Sink:
    def __init__(self):
        self.events = []

    def on_event(self, event) -> None:
        self.events.append(event)


def tracer_and_sink():
    sink = Sink()
    return Tracer([sink], clock=FakeClock()), sink


class TestTracerBasics:
    def test_ids_are_distinct_hex_prefixes(self):
        ids = {new_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)

    def test_with_block_nesting_sets_parent_ids(self):
        tracer, sink = tracer_and_sink()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_event, outer_event = sink.events
        assert inner_event.name == "inner"
        assert inner_event.parent_id == outer.span_id
        assert outer_event.parent_id == ""
        assert inner_event.trace_id == outer_event.trace_id == tracer.trace_id
        assert outer_event.pid == os.getpid()

    def test_attrs_and_set_merge(self):
        tracer, sink = tracer_and_sink()
        with tracer.span("s", generation=3) as opened:
            opened.set(batch=24, name="attr-called-name-is-fine")
        assert sink.events[0].attrs == {
            "generation": 3, "batch": 24, "name": "attr-called-name-is-fine",
        }

    def test_exception_closes_span_with_error_status(self):
        tracer, sink = tracer_and_sink()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert sink.events[0].status == "error"

    def test_close_is_idempotent(self):
        tracer, sink = tracer_and_sink()
        opened = tracer.span("once")
        opened.close()
        opened.close()
        opened.close("error")
        assert len(sink.events) == 1
        assert sink.events[0].status == "ok"

    def test_out_of_order_close_errors_abandoned_children(self):
        tracer, sink = tracer_and_sink()
        outer = tracer.span("outer")
        middle = tracer.span("middle")
        inner = tracer.span("inner")
        outer.close()  # unwinds past middle and inner
        by_name = {event.name: event for event in sink.events}
        assert set(by_name) == {"outer", "middle", "inner"}
        assert by_name["outer"].status == "ok"
        assert by_name["middle"].status == "error"
        assert by_name["inner"].status == "error"
        # The abandoned spans were closed on the caller's behalf: a later
        # explicit close must not emit a second event.
        middle.close()
        inner.close()
        assert len(sink.events) == 3

    def test_wall_time_from_the_injected_clock(self):
        tracer, sink = tracer_and_sink()
        with tracer.span("timed"):
            pass
        # FakeClock ticks once at open and once at close.
        assert sink.events[0].wall_s == 1.0
        assert sink.events[0].t0_s == 1.0

    def test_start_is_detached_from_the_parent_stack(self):
        tracer, sink = tracer_and_sink()
        with tracer.span("parent") as parent:
            detached = tracer.start("in-flight")
            with tracer.span("child"):
                pass
            detached.close()
        child = next(e for e in sink.events if e.name == "child")
        in_flight = next(e for e in sink.events if e.name == "in-flight")
        # start() records the parent at creation but does not become the
        # ambient parent of later spans.
        assert in_flight.parent_id == parent.span_id
        assert child.parent_id == parent.span_id


class TestLostSpans:
    def test_lost_emits_a_backdated_lost_event(self):
        tracer, sink = tracer_and_sink()
        event = tracer.lost("worker.eval", wall_s=3.5, genome="g1", fault="hang")
        assert event is sink.events[0]
        assert event.status == "lost"
        assert event.name == "worker.eval"
        assert event.attrs == {"genome": "g1", "fault": "hang"}
        assert event.t0_s == pytest.approx(1.0 - 3.5)
        assert event.wall_s == 3.5

    def test_lost_nests_under_the_open_span(self):
        tracer, sink = tracer_and_sink()
        with tracer.span("engine.evaluate_batch") as batch:
            tracer.lost("worker.eval")
        lost = sink.events[0]
        assert lost.parent_id == batch.span_id


class TestPropagation:
    def test_context_carries_trace_id_and_top_of_stack(self):
        tracer, _ = tracer_and_sink()
        assert tracer.context() == TraceContext(tracer.trace_id, "")
        with tracer.span("outer") as outer:
            assert tracer.context() == TraceContext(tracer.trace_id, outer.span_id)

    def test_context_is_picklable(self):
        import pickle

        context = TraceContext("t" * 16, "p" * 16)
        assert pickle.loads(pickle.dumps(context)) == context

    def test_adopted_tracer_nests_under_the_remote_parent(self):
        parent, parent_sink = tracer_and_sink()
        with parent.span("engine.evaluate_batch") as batch:
            context = parent.context()
        child_buffer = SpanBuffer()
        child = adopt(context, observers=(child_buffer,), clock=FakeClock())
        with child.span("worker.eval"):
            with child.span("pipeline.measure"):
                pass
        for event in child_buffer.records:
            parent.emit(event)
        rows = [dataclasses.asdict(e) for e in parent_sink.events
                if isinstance(e, SpanEvent)]
        tree = build_tree(rows)
        assert tree.orphans == 0
        assert len(tree.roots) == 1
        worker = next(n for n in tree.walk() if n.name == "worker.eval")
        assert worker.parent_id == batch.span_id
        measure = next(n for n in tree.walk() if n.name == "pipeline.measure")
        assert measure in worker.children

    def test_span_buffer_caps_and_counts_drops(self):
        buffer = SpanBuffer(cap=3)
        tracer = Tracer([buffer], clock=FakeClock())
        names = [f"s{i}" for i in range(5)]
        for name in names:
            with tracer.span(name):
                pass
        assert [e.name for e in buffer.records] == names[2:]
        assert buffer.dropped == 2

    def test_span_buffer_ignores_non_span_events(self):
        from repro.core.telemetry import PhaseEvent

        buffer = SpanBuffer()
        buffer.on_event(PhaseEvent(name="ga", wall_s=1.0))
        assert buffer.records == []


class TestAmbientTracer:
    def test_free_span_is_null_without_a_tracer(self):
        assert current_tracer() is None
        opened = span("anything", attr=1)
        assert opened is NULL_SPAN
        with opened:
            opened.set(more=2)
        opened.close("error")  # all no-ops

    def test_tracing_scope_installs_and_restores(self):
        tracer, sink = tracer_and_sink()
        with tracing(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
            with span("via-ambient"):
                pass
        assert current_tracer() is None
        assert sink.events[0].name == "via-ambient"

    def test_tracing_none_is_a_scoped_noop(self):
        with tracing(None):
            assert current_tracer() is None
            assert span("x") is NULL_SPAN

    def test_install_tracer_returns_previous(self):
        first, _ = tracer_and_sink()
        second, _ = tracer_and_sink()
        assert install_tracer(first) is None
        try:
            assert install_tracer(second) is first
            assert install_tracer(None) is second
        finally:
            install_tracer(None)


def _double(outcome_or_value):
    """Module-level task fn (picklable) used by the TracedTask tests."""
    return EvalOutcome(value=float(outcome_or_value) * 2, wall_s=0.0, attempts=1)


class TestTracedTask:
    def test_attaches_spans_to_dataclass_results(self):
        context = TraceContext("t" * 16, "p" * 16)
        task = TracedTask(_double, context)
        result = task(21)
        assert result.value == 42.0
        assert len(result.spans) == 1
        event = result.spans[0]
        assert event.name == "worker.eval"
        assert event.trace_id == context.trace_id
        assert event.parent_id == context.parent_id
        assert event.attrs["pid"] == os.getpid()

    def test_leaves_plain_results_alone(self):
        context = TraceContext("t" * 16)
        task = TracedTask(lambda x: x + 1, context, span_name="worker.misc")
        assert task(1) == 2

    def test_is_picklable(self):
        import pickle

        task = TracedTask(_double, TraceContext("t" * 16, "p" * 16))
        clone = pickle.loads(pickle.dumps(task))
        assert clone.context == task.context
        assert clone(1).value == 2.0

    def test_does_not_leak_the_ambient_tracer(self):
        task = TracedTask(_double, TraceContext("t" * 16))
        task(1)
        assert current_tracer() is None


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
NESTING = st.recursive(
    st.just([]),
    lambda children: st.lists(children, min_size=0, max_size=3),
    max_leaves=12,
)


def _run_nested(tracer, shape):
    for child in shape:
        with tracer.span("node"):
            _run_nested(tracer, child)


@settings(max_examples=60, deadline=None)
@given(shape=st.lists(NESTING, min_size=0, max_size=3))
def test_any_nesting_builds_a_single_rooted_tree(shape):
    sink = Sink()
    tracer = Tracer([sink], clock=FakeClock())
    with tracer.span("root"):
        _run_nested(tracer, shape)
    rows = [dataclasses.asdict(e) for e in sink.events]
    tree = build_tree(rows)
    assert len(tree.nodes) == len(sink.events)
    assert tree.orphans == 0
    assert tree.lost == 0
    assert len(tree.roots) == 1
    assert tree.roots[0].name == "root"
    # Every span emitted exactly once, ids unique.
    assert len({e.span_id for e in sink.events}) == len(sink.events)


@settings(max_examples=60, deadline=None)
@given(shape=st.lists(NESTING, min_size=0, max_size=3))
def test_self_times_partition_the_root_wall(shape):
    sink = Sink()
    tracer = Tracer([sink], clock=FakeClock())
    with tracer.span("root"):
        _run_nested(tracer, shape)
    tree = build_tree([dataclasses.asdict(e) for e in sink.events])
    root = tree.roots[0]
    for node in tree.walk():
        assert node.self_s >= 0.0
        assert sum(c.wall_s for c in node.children) <= node.wall_s
    # With a strictly increasing clock and LIFO closes, the children's
    # intervals tile the parent exactly once, so self-times partition
    # the root's wall time.
    assert sum(n.self_s for n in tree.walk()) == pytest.approx(root.wall_s)


@settings(max_examples=80, deadline=None)
@given(script=st.lists(st.integers(min_value=0, max_value=7), max_size=40))
def test_any_open_close_interleaving_is_coherent(script):
    sink = Sink()
    tracer = Tracer([sink], clock=FakeClock())
    opened = []
    live = []  # mirrors the tracer's parent stack
    with tracer.span("root"):
        for op in script:
            if op % 2 == 0 or not live:
                child = tracer.span(f"s{len(opened)}")
                opened.append(child)
                live.append(child)
            else:
                index = op % len(live)
                live[index].close()  # possibly out-of-order
                del live[index:]  # the tracer errored everything above it
        for straggler in reversed(live):
            straggler.close()
    events = sink.events
    # Exactly one event per opened span (plus the root), unique ids.
    assert len(events) == len(opened) + 1
    assert len({e.span_id for e in events}) == len(events)
    assert {e.status for e in events} <= {"ok", "error"}
    tree = build_tree([dataclasses.asdict(e) for e in events])
    assert tree.orphans == 0
    assert len(tree.roots) == 1
    for node in tree.walk():
        assert node.wall_s >= 0.0
