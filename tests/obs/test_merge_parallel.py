"""Telemetry merging under ``--workers N``: order-independent, lossless.

A seeded campaign must report the same deterministic counters whether it
ran serially or fanned out over worker processes — the per-worker deltas
(engine outcomes, platform stats, qualification axes) merge back into
totals that do not depend on completion order.  Wall-clock numbers and
per-worker cache splits legitimately differ; the *sums* may not.
"""

import dataclasses

import pytest

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.engine import make_executor
from repro.core.ga import GaConfig
from repro.core.telemetry import TelemetryCollector
from repro.experiments.setup import bulldozer_testbed

CONFIG = AuditConfig(
    threads=2,
    mode=StressmarkMode.RESONANT,
    ga=GaConfig(population_size=6, generations=2, seed=3),
)


def _run_campaign(workers: int):
    collector = TelemetryCollector()
    platform = bulldozer_testbed()
    executor = make_executor(workers)
    runner = AuditRunner(
        platform,
        config=CONFIG,
        executor=executor,
        observers=[collector],
        platform_factory=bulldozer_testbed if workers > 1 else None,
    )
    try:
        result = runner.run()
    finally:
        executor.close()
    return result, collector, platform


@pytest.mark.slow
class TestSerialVsParallelCampaign:
    @pytest.fixture(scope="class")
    def runs(self):
        serial = _run_campaign(workers=1)
        parallel = _run_campaign(workers=2)
        return serial, parallel

    def test_results_are_identical(self, runs):
        (serial_result, *_), (parallel_result, *_) = runs
        assert serial_result.max_droop_v == pytest.approx(
            parallel_result.max_droop_v)
        assert (serial_result.ga_result.best_fitness
                == pytest.approx(parallel_result.ga_result.best_fitness))

    def test_engine_counters_merge_order_independently(self, runs):
        (_, serial, _), (_, parallel, _) = runs
        assert serial.evaluations == parallel.evaluations
        assert serial.cache_hits == parallel.cache_hits
        assert serial.generations == parallel.generations
        assert serial.fault_retries == parallel.fault_retries
        assert serial.quarantines == parallel.quarantines

    def test_platform_stats_sums_are_deterministic(self, runs):
        (_, _, serial_platform), (_, _, parallel_platform) = runs
        serial_stats = serial_platform.stats()
        parallel_stats = parallel_platform.stats()
        # The same measurements ran, whatever process they landed in.
        assert serial_stats.measurements == parallel_stats.measurements
        assert (serial_stats.periodic_measurements
                == parallel_stats.periodic_measurements)
        assert (serial_stats.jittered_measurements
                == parallel_stats.jittered_measurements)
        assert (serial_stats.transient_measurements
                == parallel_stats.transient_measurements)
        # Per-worker module caches are cold where the serial cache was
        # warm, so runs vs hits individually differ — but every
        # measurement either ran or hit, so the sum is invariant.
        assert (serial_stats.module_runs + serial_stats.module_cache_hits
                == parallel_stats.module_runs
                + parallel_stats.module_cache_hits)


@pytest.mark.slow
class TestQualifierUnderWorkers:
    def test_qualify_verdict_is_worker_count_invariant(self, capsys):
        from repro.cli import main

        QUALIFY = ["qualify", "a-res", "--threads", "2",
                   "--jitter-repeats", "1", "--supply-points", "1"]

        def summary(args):
            assert main(args) == 0
            out = capsys.readouterr().out
            return next(line for line in out.splitlines()
                        if line.startswith("verdict:"))

        serial_line = summary(QUALIFY)
        parallel_line = summary([*QUALIFY, "--workers", "2"])
        # verdict, robustness, and evaluation counts all match; only
        # wall time may differ, and it is not on this line's prefix.
        assert (serial_line.split("cache hits")[0]
                == parallel_line.split("cache hits")[0])


class TestCollectorMerge:
    def _collector(self, **overrides):
        collector = TelemetryCollector(
            evaluations=3, cache_hits=1, eval_wall_s=1.5, generations=2,
            phases={"ga": 1.0}, quarantines=1,
            stage_wall_s={"pdn": 0.5}, stage_cache_hits={"pdn": 2},
            span_counts={"worker.eval": 3}, span_wall_s={"worker.eval": 2.0},
            spans_lost=1, platform_stats={"measurements": 4},
        )
        for key, value in overrides.items():
            setattr(collector, key, value)
        return collector

    def test_merge_sums_scalars_and_dicts(self):
        merged = self._collector().merge(self._collector())
        assert merged.evaluations == 6
        assert merged.cache_hits == 2
        assert merged.eval_wall_s == pytest.approx(3.0)
        assert merged.phases == {"ga": 2.0}
        assert merged.stage_cache_hits == {"pdn": 4}
        assert merged.span_counts == {"worker.eval": 6}
        assert merged.spans_lost == 2
        assert merged.platform_stats == {"measurements": 8}

    def test_merge_is_commutative_on_the_counter_snapshot(self):
        a1 = self._collector(evaluations=10, span_counts={"a": 1})
        b1 = self._collector(cache_hits=7, span_counts={"b": 2})
        a2 = self._collector(evaluations=10, span_counts={"a": 1})
        b2 = self._collector(cache_hits=7, span_counts={"b": 2})
        ab = a1.merge(b1).counter_snapshot()
        ba = b2.merge(a2).counter_snapshot()
        assert ab == ba

    def test_merge_keeps_the_smallest_shutdown_reason(self):
        a = self._collector(shutdown_reason="signal SIGTERM")
        b = self._collector(shutdown_reason="")
        assert a.merge(b).shutdown_reason == "signal SIGTERM"
        c = self._collector(shutdown_reason="wall-clock budget")
        d = self._collector(shutdown_reason="signal SIGTERM")
        assert c.merge(d).shutdown_reason == "signal SIGTERM"

    def test_counter_snapshot_excludes_wall_clock(self):
        snapshot = self._collector().counter_snapshot()
        assert "eval_wall_s" not in snapshot
        assert "stage_wall_s" not in snapshot
        assert "span_wall_s" not in snapshot
        assert "phases" not in snapshot
        assert "platform_stats" not in snapshot
        assert snapshot["evaluations"] == 3
        assert snapshot["span_counts"] == {"worker.eval": 3}

    def test_merge_covers_every_field(self):
        # A field added to the collector without merge coverage would
        # silently under-report under --workers: every numeric/dict field
        # must change when merging two non-trivial collectors.
        base = self._collector()
        doubled = self._collector().merge(self._collector())
        for spec in dataclasses.fields(TelemetryCollector):
            before = getattr(base, spec.name)
            after = getattr(doubled, spec.name)
            if isinstance(before, (int, float)) and before:
                assert after == 2 * before, spec.name
            elif isinstance(before, dict) and before:
                assert after != before, spec.name
