"""Record identity: content addressing, provenance exclusion, tampering."""

import dataclasses

import pytest

from repro.errors import RegistryError
from repro.registry import RECORD_VERSION, RegistryRecord

from tests.registry.conftest import synthetic_record, with_provenance


class TestIdentity:
    def test_id_is_deterministic(self):
        assert synthetic_record(1).record_id == synthetic_record(1).record_id

    def test_id_changes_with_measured_fields(self):
        base = synthetic_record(1)
        assert base.record_id != synthetic_record(2).record_id
        deeper = dataclasses.replace(base, droop_v=base.droop_v + 1e-12)
        assert deeper.record_id != base.record_id

    def test_provenance_excluded_from_id(self):
        base = synthetic_record(1)
        restamped = with_provenance(base, created_at=9e9, git="elsewhere")
        assert restamped.record_id == base.record_id

    def test_index_entry_carries_campaign(self):
        entry = synthetic_record(3, campaign="nightly").index_entry()
        assert entry["campaign"] == "nightly"
        assert entry["record_id"] == synthetic_record(3).record_id
        assert entry["chip"] == "bulldozer"


class TestPayloadRoundTrip:
    def test_round_trip_preserves_identity(self):
        base = synthetic_record(4, verdict="PASS")
        decoded = RegistryRecord.from_payload(base.to_payload())
        assert decoded == base
        assert decoded.record_id == base.record_id

    def test_droop_survives_json_bit_exactly(self):
        base = dataclasses.replace(synthetic_record(5),
                                   droop_v=0.03633692588394366)
        import json

        decoded = RegistryRecord.from_payload(
            json.loads(json.dumps(base.to_payload()))
        )
        assert decoded.droop_v == base.droop_v

    def test_tampered_payload_rejected(self):
        payload = synthetic_record(6).to_payload()
        payload["droop_v"] = 0.999
        with pytest.raises(RegistryError, match="tampered or corrupt"):
            RegistryRecord.from_payload(payload)

    def test_unknown_version_rejected(self):
        payload = synthetic_record(7).to_payload()
        payload["record_version"] = RECORD_VERSION + 1
        with pytest.raises(RegistryError, match="version"):
            RegistryRecord.from_payload(payload)

    def test_unknown_program_source_rejected(self):
        payload = synthetic_record(8).to_payload()
        payload["program"] = {"source": "carrier-pigeon"}
        with pytest.raises(RegistryError, match="program source"):
            RegistryRecord.from_payload(payload)

    def test_non_object_rejected(self):
        with pytest.raises(RegistryError, match="expected a JSON object"):
            RegistryRecord.from_payload(["not", "a", "record"])


class TestAuditBuilder:
    def test_audit_record_fields(self, audit_record, audit_result):
        assert audit_record.kind == "audit"
        assert audit_record.name == audit_result.name
        assert audit_record.droop_v == audit_result.max_droop_v
        assert audit_record.threads == audit_result.threads
        assert audit_record.mode == "resonant"
        assert audit_record.program["source"] == "genome"
        assert audit_record.program["subblock"] == list(
            audit_result.genome.subblock)
        assert audit_record.provenance["campaign"] == "unit"

    def test_audit_record_round_trips(self, audit_record):
        decoded = RegistryRecord.from_payload(audit_record.to_payload())
        assert decoded.record_id == audit_record.record_id
        assert decoded.droop_v == audit_record.droop_v
