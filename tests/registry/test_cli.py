"""The ``repro registry`` command family and ``--version``, end to end."""

import json

import pytest

from repro import package_version
from repro.cli import main
from repro.errors import EXIT_FAILURE, EXIT_OK
from repro.registry import StressmarkRegistry, hash_platform

from tests.registry.conftest import synthetic_record

AUDIT_FLAGS = ["--threads", "2", "--population", "4", "--generations", "1",
               "--seed", "7"]


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    """One registry with a real audit record, published through the CLI."""
    registry_dir = tmp_path_factory.mktemp("registry")
    code = main(["audit", *AUDIT_FLAGS,
                 "--registry", str(registry_dir),
                 "--registry-campaign", "cli-test"])
    assert code == EXIT_OK
    registry = StressmarkRegistry(registry_dir)
    entries = registry.entries()
    assert len(entries) == 1
    return registry_dir, entries[0]["record_id"]


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert package_version() in capsys.readouterr().out

    def test_crash_report_carries_version(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)

        def explode(*_args, **_kwargs):
            raise RuntimeError("simulated meltdown")

        monkeypatch.setattr("repro.cli._platform", explode)
        assert main(["sweep"]) == 70
        capsys.readouterr()
        report = json.loads((tmp_path / "crash_report.json").read_text())
        assert report["version"] == package_version()


class TestPublishPaths:
    def test_audit_prints_publish_line(self, published, capsys):
        registry_dir, record_id = published
        assert main(["audit", *AUDIT_FLAGS,
                     "--registry", str(registry_dir)]) == EXIT_OK
        out = capsys.readouterr().out
        assert f"already published as {record_id[:12]}" in out

    def test_qualify_publishes(self, tmp_path, capsys):
        registry_dir = tmp_path / "reg"
        code = main(["qualify", "a-res", "--threads", "2",
                     "--jitter-repeats", "2", "--supply-points", "3",
                     "--registry", str(registry_dir)])
        assert code == EXIT_OK
        assert "published as" in capsys.readouterr().out
        entries = StressmarkRegistry(registry_dir).entries()
        assert [e["kind"] for e in entries] == ["qualify"]

    def test_fleet_publishes(self, tmp_path, capsys):
        registry_dir = tmp_path / "reg"
        fleet_dir = tmp_path / "fleet"
        code = main(["fleet", "run", "--matrix", "chip=bulldozer",
                     "--matrix", "threads=2", "--matrix", "budget=4x1",
                     "--dir", str(fleet_dir), "--workers", "1",
                     "--registry", str(registry_dir)])
        assert code == EXIT_OK
        capsys.readouterr()
        entries = StressmarkRegistry(registry_dir).entries()
        assert [e["kind"] for e in entries] == ["fleet"]
        assert [e["campaign"] for e in entries] == ["fleet"]
        meta = json.loads((fleet_dir / "fleet.json").read_text())
        assert meta["registry"] == str(registry_dir)


class TestRegistryCommands:
    def test_list_and_query(self, published, capsys):
        registry_dir, record_id = published
        assert main(["registry", "list", str(registry_dir)]) == EXIT_OK
        out = capsys.readouterr().out
        assert record_id[:12] in out
        assert "cli-test" in out

        assert main(["registry", "query", str(registry_dir),
                     "--campaign", "cli-test", "--ids-only"]) == EXIT_OK
        assert capsys.readouterr().out.strip() == record_id

    def test_query_no_match(self, published, capsys):
        registry_dir, _ = published
        assert main(["registry", "query", str(registry_dir),
                     "--campaign", "nonesuch"]) == EXIT_OK
        assert "no records" in capsys.readouterr().out

    def test_show_round_trips_payload(self, published, capsys):
        registry_dir, record_id = published
        assert main(["registry", "show", str(registry_dir),
                     record_id[:12]]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["record_id"] == record_id
        assert payload["provenance"]["campaign"] == "cli-test"
        assert payload["provenance"]["repro_version"] == package_version()
        assert payload["provenance"]["telemetry"]["evaluations"] > 0

    def test_verify_reproduces_droop(self, published, capsys):
        registry_dir, record_id = published
        assert main(["registry", "verify", str(registry_dir),
                     record_id[:12]]) == EXIT_OK
        assert "bit-identically" in capsys.readouterr().out

    def test_verify_detects_forged_droop(self, tmp_path, capsys):
        from repro.registry import build_platform, platform_descriptor

        registry = StressmarkRegistry(tmp_path / "reg")
        descriptor = platform_descriptor("bulldozer")
        forged = synthetic_record(1)
        # Right platform hash, wrong droop: replay must flag the mismatch.
        import dataclasses

        forged = dataclasses.replace(
            forged, platform_hash=hash_platform(build_platform(descriptor)),
            droop_v=0.5)
        outcome = registry.publish(forged)
        code = main(["registry", "verify", str(tmp_path / "reg"),
                     outcome.record_id[:12]])
        assert code == EXIT_FAILURE
        assert "droop mismatch" in capsys.readouterr().out

    def test_export_import_compare(self, published, tmp_path, capsys):
        registry_dir, record_id = published
        archive = tmp_path / "marks.tar.gz"
        assert main(["registry", "export", str(registry_dir),
                     str(archive)]) == EXIT_OK
        second = tmp_path / "reg2"
        assert main(["registry", "import", str(second),
                     str(archive)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "imported 1 new record(s)" in out

        assert main(["registry", "compare", str(second),
                     record_id[:12], record_id[:12]]) == EXIT_OK
        assert "record comparison" in capsys.readouterr().out

    def test_compare_mixed_forms_rejected(self, published, capsys):
        registry_dir, record_id = published
        code = main(["registry", "compare", str(registry_dir),
                     record_id[:12], "campaign:cli-test"])
        assert code == EXIT_FAILURE
        assert "two records or two campaigns" in capsys.readouterr().err

    def test_unknown_ref_fails_cleanly(self, published, capsys):
        registry_dir, _ = published
        code = main(["registry", "show", str(registry_dir), "feedfacefeed"])
        assert code == EXIT_FAILURE
        assert "no record matches" in capsys.readouterr().err
