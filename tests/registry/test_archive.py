"""Export/import round trips, dedup on re-import, hostile archives."""

import io
import json
import tarfile

import pytest

from repro.errors import RegistryError
from repro.registry import StressmarkRegistry, export_records, import_archive

from tests.registry.conftest import synthetic_record


@pytest.fixture
def populated(tmp_path):
    registry = StressmarkRegistry(tmp_path / "reg")
    ids = [registry.publish(synthetic_record(n)).record_id for n in range(3)]
    return registry, ids


class TestRoundTrip:
    def test_export_import_round_trip(self, populated, tmp_path):
        registry, ids = populated
        archive = tmp_path / "marks.tar.gz"
        assert sorted(export_records(registry, archive)) == sorted(ids)

        target = StressmarkRegistry(tmp_path / "reg2")
        outcome = import_archive(target, archive)
        assert sorted(outcome.imported) == sorted(ids)
        assert outcome.deduped == ()
        assert {r.record_id for r in target.records()} == set(ids)

    def test_reimport_deduplicates(self, populated, tmp_path):
        registry, ids = populated
        archive = tmp_path / "marks.tar.gz"
        export_records(registry, archive)
        target = StressmarkRegistry(tmp_path / "reg2")
        import_archive(target, archive)
        again = import_archive(target, archive)
        assert again.imported == ()
        assert sorted(again.deduped) == sorted(ids)

    def test_selective_export(self, populated, tmp_path):
        registry, ids = populated
        archive = tmp_path / "one.tar.gz"
        exported = export_records(registry, archive, refs=[ids[0][:12]])
        assert exported == [ids[0]]
        target = StressmarkRegistry(tmp_path / "reg2")
        assert import_archive(target, archive).total == 1

    def test_same_content_exports_are_byte_identical(self, populated,
                                                     tmp_path):
        """Fixed member mtimes make exports comparable across machines."""
        registry, ids = populated
        a, b = tmp_path / "a.tar.gz", tmp_path / "b.tar.gz"
        export_records(registry, a, refs=[ids[0]])
        export_records(registry, b, refs=[ids[0]])
        with tarfile.open(a) as ta, tarfile.open(b) as tb:
            for ma, mb in zip(ta.getmembers(), tb.getmembers()):
                assert ma.name == mb.name
                assert ma.mtime == mb.mtime == 0

    def test_empty_export_rejected(self, tmp_path):
        registry = StressmarkRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="nothing to export"):
            export_records(registry, tmp_path / "empty.tar.gz")


def _retar(src_path, dst_path, mutate):
    """Copy an archive, passing each (name, payload) through *mutate*."""
    with tarfile.open(src_path, "r:gz") as src, \
            tarfile.open(dst_path, "w:gz") as dst:
        for member in src.getmembers():
            payload = json.loads(src.extractfile(member).read())
            name, payload = mutate(member.name, payload)
            if name is None:
                continue
            data = json.dumps(payload).encode("utf-8")
            info = tarfile.TarInfo(name)
            info.size = len(data)
            dst.addfile(info, io.BytesIO(data))


class TestHostileArchives:
    def test_tampered_member_rejected(self, populated, tmp_path):
        registry, ids = populated
        archive = tmp_path / "marks.tar.gz"
        export_records(registry, archive)

        def deepen(name, payload):
            if "objects/" in name:
                payload["droop_v"] = 9.9  # forged measurement
            return name, payload

        forged = tmp_path / "forged.tar.gz"
        _retar(archive, forged, deepen)
        target = StressmarkRegistry(tmp_path / "reg2")
        with pytest.raises(RegistryError, match="tampered or corrupt"):
            import_archive(target, forged)

    def test_manifest_missing_rejected(self, populated, tmp_path):
        registry, _ = populated
        archive = tmp_path / "marks.tar.gz"
        export_records(registry, archive)
        headless = tmp_path / "headless.tar.gz"
        _retar(archive, headless,
               lambda name, payload: (None, None) if "manifest" in name
               else (name, payload))
        target = StressmarkRegistry(tmp_path / "reg2")
        with pytest.raises(RegistryError, match="manifest"):
            import_archive(target, headless)

    def test_manifest_promising_absent_record_rejected(self, populated,
                                                       tmp_path):
        registry, ids = populated
        archive = tmp_path / "marks.tar.gz"
        export_records(registry, archive)

        def drop_one(name, payload):
            if name.endswith(f"{ids[0]}.json"):
                return None, None
            return name, payload

        torn = tmp_path / "torn.tar.gz"
        _retar(archive, torn, drop_one)
        target = StressmarkRegistry(tmp_path / "reg2")
        with pytest.raises(RegistryError, match="absent from the archive"):
            import_archive(target, torn)

    def test_not_a_tarball_rejected(self, tmp_path):
        registry = StressmarkRegistry(tmp_path / "reg")
        junk = tmp_path / "junk.tar.gz"
        junk.write_bytes(b"\x00" * 64)
        with pytest.raises(RegistryError, match="cannot read archive"):
            import_archive(registry, junk)
