"""Replay verification: recorded droops must reproduce bit for bit."""

import dataclasses
import math

import pytest

from repro.core.qualify import QualifyConfig, StressmarkQualifier
from repro.errors import RegistryError
from repro.isa.opcodes import default_table
from repro.registry import (
    RegistryRecord,
    platform_descriptor,
    rebuild_program,
    record_from_qualification,
    verify_record,
)
from repro.registry.verify import VerifyResult
from repro.workloads.stressmarks import canned_stressmark, stressmark_program


class TestAuditRoundTrip:
    def test_audit_record_verifies_bit_identically(self, audit_record):
        result = verify_record(audit_record)
        assert result.droop_identical
        assert result.measured_droop_v == audit_record.droop_v
        assert not result.platform_drifted
        assert result.ok
        assert "bit-identically" in result.describe()

    def test_rebuilt_program_matches_the_original(self, audit_record,
                                                  audit_result, platform):
        program = rebuild_program(audit_record, platform)
        assert program.kernel.name == audit_result.name
        measured = platform.measure_program(program, audit_record.threads)
        assert measured.max_droop_v == audit_record.droop_v

    def test_altered_droop_fails_verification(self, audit_record):
        tampered = dataclasses.replace(
            audit_record, droop_v=audit_record.droop_v + 1e-9)
        result = verify_record(tampered)
        assert not result.droop_identical
        assert not result.ok
        assert "FAILED" in result.describe()

    def test_platform_drift_detected(self, audit_record):
        drifted = dataclasses.replace(audit_record,
                                      platform_hash="0123456789abcdef")
        result = verify_record(drifted)
        assert result.platform_drifted
        assert not result.ok
        assert "drift" in result.describe()


class TestQualifyRoundTrip:
    def test_canned_record_verifies(self, platform):
        pool = default_table().supported_on(platform.chip.extensions)
        program = stressmark_program(canned_stressmark("a-res", pool))
        qualifier = StressmarkQualifier(
            platform, threads=2,
            config=QualifyConfig(jitter_repeats=2, supply_points=3),
        )
        report = qualifier.qualify_program(program, name="a-res")
        record = record_from_qualification(
            report, platform=platform,
            descriptor=platform_descriptor("bulldozer"),
        )
        result = verify_record(record)
        assert result.ok
        assert result.measured_droop_v == report.nominal_droop_v


class TestVerifyResult:
    def test_nan_never_verifies(self):
        result = VerifyResult(
            record_id="cafe", recorded_droop_v=math.nan,
            measured_droop_v=math.nan,
            platform_hash_recorded="x", platform_hash_rebuilt="x",
            wall_s=0.0,
        )
        assert not result.droop_identical
        assert not result.ok


class TestRebuildErrors:
    def test_unknown_chip_rejected(self, audit_record):
        bogus = dataclasses.replace(
            audit_record, platform={**audit_record.platform, "chip": "epyc"})
        with pytest.raises(RegistryError, match="unknown chip"):
            verify_record(bogus)

    def test_unknown_program_source_rejected(self, audit_record, platform):
        bogus = dataclasses.replace(
            audit_record, program={"source": "carrier-pigeon"})
        with pytest.raises(RegistryError):
            rebuild_program(bogus, platform)

    def test_unknown_canned_name_rejected(self, platform, audit_record):
        bogus = dataclasses.replace(
            audit_record,
            program={"source": "canned", "stressmark": "nonesuch"})
        with pytest.raises(Exception):
            rebuild_program(bogus, platform)


class TestThrottledDescriptor:
    def test_throttled_platform_round_trips(self):
        """A record published from a throttled testbed rebuilds and
        re-measures identically (the audit CLI's --throttle path)."""
        from repro.registry import build_platform, hash_platform

        descriptor = platform_descriptor("bulldozer", throttle=1)
        platform = build_platform(descriptor)
        pool = default_table().supported_on(platform.chip.extensions)
        program = stressmark_program(canned_stressmark("a-res", pool))
        droop = platform.measure_program(program, 2).max_droop_v
        record = RegistryRecord(
            kind="qualify", name="a-res",
            program={"source": "canned", "stressmark": "a-res"},
            platform=descriptor,
            platform_hash=hash_platform(platform),
            threads=2, droop_v=droop,
        )
        assert verify_record(record).ok
