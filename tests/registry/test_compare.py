"""Record and campaign comparisons."""

import dataclasses

import pytest

from repro.errors import RegistryError
from repro.registry import (
    StressmarkRegistry,
    compare_campaigns,
    compare_records,
    render_campaign_comparison,
    render_record_comparison,
)

from tests.registry.conftest import synthetic_record


def _axis(rows, name):
    return next(row for row in rows if row["axis"] == name)


class TestCompareRecords:
    def test_numeric_axes_carry_deltas(self):
        a, b = synthetic_record(1), synthetic_record(4)
        rows = compare_records(a, b)
        droop = _axis(rows, "droop_v")
        assert droop["delta"] == pytest.approx(b.droop_v - a.droop_v)
        assert _axis(rows, "threads")["delta"] == 0

    def test_canned_genome_label(self):
        rows = compare_records(synthetic_record(1), synthetic_record(2))
        assert _axis(rows, "genome")["a"] == "canned:a-res"

    def test_genome_slot_difference(self, audit_record):
        mutated = dataclasses.replace(
            audit_record,
            program={**audit_record.program,
                     "subblock": list(reversed(
                         audit_record.program["subblock"]))},
        )
        rows = compare_records(audit_record, mutated)
        a_changed, b_changed = (_axis(rows, "genome slots changed")["a"],
                                _axis(rows, "genome slots changed")["b"])
        assert a_changed == 0
        assert b_changed >= 0

    def test_render_is_a_table(self):
        text = render_record_comparison(
            compare_records(synthetic_record(1), synthetic_record(2)))
        assert "record comparison" in text
        assert "droop_v" in text


class TestCompareCampaigns:
    @pytest.fixture
    def registry(self, tmp_path):
        registry = StressmarkRegistry(tmp_path / "reg")
        for n in range(3):
            registry.publish(synthetic_record(n, campaign="before"))
        # After: mark-0 identical droop, mark-1 deeper, mark-2 shallower.
        # (A distinct platform hash keeps the bit-identical rerun from
        # content-deduping against its "before" twin.)
        for n, delta in ((0, 0.0), (1, 0.004), (2, -0.004)):
            record = synthetic_record(n, campaign="after")
            record = dataclasses.replace(
                record, droop_v=record.droop_v + delta,
                platform_hash=record.platform_hash + "-after")
            registry.publish(record)
        return registry

    def test_join_and_tallies(self, registry):
        diff = compare_campaigns(registry, "before", "after")
        assert diff["shared"] == 3
        assert diff["identical"] == 1
        assert diff["improved"] == 1
        assert diff["regressed"] == 1

    def test_render_summarises(self, registry):
        text = render_campaign_comparison(
            compare_campaigns(registry, "before", "after"))
        assert "campaign comparison" in text
        assert "1 bit-identical" in text

    def test_unknown_campaign_rejected(self, registry):
        with pytest.raises(RegistryError, match="no records for campaign"):
            compare_campaigns(registry, "before", "nonesuch")

    def test_disjoint_scenarios_listed_without_delta(self, tmp_path):
        registry = StressmarkRegistry(tmp_path / "reg")
        registry.publish(synthetic_record(1, campaign="alpha"))
        registry.publish(synthetic_record(2, campaign="beta"))
        diff = compare_campaigns(registry, "alpha", "beta")
        assert diff["shared"] == 0
        assert len(diff["scenarios"]) == 2
        assert all(entry["delta_v"] is None for entry in diff["scenarios"])
