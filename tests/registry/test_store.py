"""Store semantics: dedup, prefix lookup, queries, salvage, full disks."""

import errno
import json

import pytest

from repro.core.telemetry import RecentEventsObserver
from repro.errors import RegistryError
from repro.registry import StressmarkRegistry
from repro.registry.store import MIN_REF_LENGTH, REGISTRY_VERSION
from repro.supervision.chaos import (
    bitflip_file,
    inject_write_failures,
    truncate_file,
)

from tests.registry.conftest import synthetic_record


@pytest.fixture
def registry(tmp_path):
    return StressmarkRegistry(tmp_path / "reg")


def publish_many(registry, count, **kwargs):
    return [registry.publish(synthetic_record(n, **kwargs))
            for n in range(count)]


class TestPublish:
    def test_publish_then_dedup(self, registry):
        first = registry.publish(synthetic_record(1))
        again = registry.publish(synthetic_record(1))
        assert not first.deduped
        assert again.deduped
        assert first.record_id == again.record_id
        assert len(registry.entries()) == 1

    def test_restamped_record_dedups(self, registry):
        import dataclasses

        base = synthetic_record(1)
        registry.publish(base)
        restamped = dataclasses.replace(
            base, provenance={**base.provenance, "git": "elsewhere"})
        assert registry.publish(restamped).deduped

    def test_object_layout_is_sharded(self, registry):
        outcome = registry.publish(synthetic_record(2))
        path = registry.object_path(outcome.record_id)
        assert path.parent.name == outcome.record_id[:2]
        assert json.loads(path.read_text())["record_id"] == outcome.record_id

    def test_publish_emits_event(self, tmp_path):
        recorder = RecentEventsObserver()
        registry = StressmarkRegistry(tmp_path / "reg", observers=[recorder])
        registry.publish(synthetic_record(1))
        kinds = [event["kind"] for event in recorder.tail()]
        assert "registry" in kinds

    def test_enospc_publish_raises_registry_error(self, registry):
        with inject_write_failures(count=1, errno=errno.ENOSPC):
            with pytest.raises(RegistryError, match="No space left"):
                registry.publish(synthetic_record(3))
        # The failed publish left no object behind; a retry lands cleanly.
        outcome = registry.publish(synthetic_record(3))
        assert not outcome.deduped

    def test_version_mismatch_rejected(self, tmp_path):
        registry = StressmarkRegistry(tmp_path / "reg")
        meta = json.loads(registry.meta_path.read_text())
        meta["registry_version"] = REGISTRY_VERSION + 1
        registry.meta_path.write_text(json.dumps(meta))
        with pytest.raises(RegistryError, match="version"):
            StressmarkRegistry(tmp_path / "reg")


class TestLookup:
    def test_get_by_prefix(self, registry):
        outcome = registry.publish(synthetic_record(1))
        record = registry.get(outcome.record_id[:MIN_REF_LENGTH + 2])
        assert record.record_id == outcome.record_id

    def test_short_ref_rejected(self, registry):
        registry.publish(synthetic_record(1))
        with pytest.raises(RegistryError, match="too short"):
            registry.get("ab")

    def test_unknown_ref_rejected(self, registry):
        with pytest.raises(RegistryError, match="no record matches"):
            registry.get("feedfacefeed")

    def test_ambiguous_ref_rejected(self, registry, monkeypatch):
        ids = [outcome.record_id for outcome in publish_many(registry, 40)]
        shared = None
        for rid in ids:
            twins = [x for x in ids if x[:1] == rid[:1]]
            if len(twins) > 1:
                shared = rid[:1]
                break
        assert shared is not None, "40 sha256 ids share no first nibble?"
        monkeypatch.setattr("repro.registry.store.MIN_REF_LENGTH", 1)
        with pytest.raises(RegistryError, match="ambiguous"):
            registry.get(shared)


class TestQuery:
    def test_query_filters_compose(self, registry):
        publish_many(registry, 3, campaign="alpha")
        publish_many(registry, 2, campaign="beta", verdict="PASS")
        assert len(registry.query(campaign="alpha")) == 3
        assert len(registry.query(campaign="beta", verdict="PASS")) == 2
        assert registry.query(campaign="beta", verdict="ARTIFACT") == []

    def test_query_droop_range(self, registry):
        publish_many(registry, 5)  # droops 0.030 .. 0.034
        hits = registry.query(min_droop_v=0.031, max_droop_v=0.033)
        assert sorted(e["droop_v"] for e in hits) == [0.031, 0.032, 0.033]

    def test_query_platform_hash(self, registry):
        publish_many(registry, 3)
        assert len(registry.query(platform_hash="hash-0001")) == 1


class TestSalvage:
    def test_truncated_index_rebuilt_from_objects(self, registry):
        ids = {o.record_id for o in publish_many(registry, 4)}
        truncate_file(registry.index_path, keep_fraction=0.4)
        entries = registry.entries()
        assert {e["record_id"] for e in entries} == ids
        # The rebuild persisted: a fresh handle reads a clean index.
        fresh = StressmarkRegistry(registry.directory)
        assert len(fresh._read_index()[0]) == 4

    def test_bitflipped_index_rebuilt(self, registry):
        ids = {o.record_id for o in publish_many(registry, 3)}
        bitflip_file(registry.index_path, offset=4, bit=4)
        assert {e["record_id"] for e in registry.entries()} == ids

    def test_missing_index_line_rebuilt(self, registry):
        """A crash between object write and index append self-heals."""
        ids = {o.record_id for o in publish_many(registry, 3)}
        registry.index_path.write_text("")  # the appends never landed
        assert {e["record_id"] for e in registry.entries()} == ids

    def test_corrupt_object_skipped_by_rebuild(self, registry):
        outcomes = publish_many(registry, 3)
        bitflip_file(registry.object_path(outcomes[0].record_id),
                     offset=60, bit=3)
        registry.index_path.unlink()
        survivors = {e["record_id"] for e in registry.rebuild_index()}
        assert survivors == {o.record_id for o in outcomes[1:]}

    def test_salvage_emits_event(self, tmp_path):
        recorder = RecentEventsObserver()
        registry = StressmarkRegistry(tmp_path / "reg", observers=[recorder])
        registry.publish(synthetic_record(1))
        truncate_file(registry.index_path, keep_bytes=5)
        registry.entries()
        details = [event.get("detail", "") for event in recorder.tail()]
        assert any("rebuilt" in detail for detail in details)

    def test_hand_edited_object_fails_hash_check(self, registry):
        outcome = registry.publish(synthetic_record(1))
        path = registry.object_path(outcome.record_id)
        payload = json.loads(path.read_text())
        payload["droop_v"] = 99.0
        path.write_text(json.dumps(payload))
        with pytest.raises(RegistryError, match="tampered or corrupt"):
            registry.get(outcome.record_id)
