"""Shared fixtures: one real audit record, cheap synthetic records."""

import dataclasses

import pytest

from repro.core.audit import AuditConfig, AuditRunner
from repro.core.ga import GaConfig
from repro.core.platform import MeasurementPlatform
from repro.pdn.elements import bulldozer_pdn
from repro.registry import (
    RegistryRecord,
    platform_descriptor,
    provenance_stamp,
    record_from_audit,
)
from repro.uarch.config import bulldozer_chip


@pytest.fixture(scope="session")
def platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


@pytest.fixture(scope="session")
def audit_result(platform):
    """One tiny but real campaign result shared by the whole package."""
    config = AuditConfig(
        threads=2, ga=GaConfig(population_size=4, generations=1, seed=7),
    )
    return AuditRunner(platform, config=config).run()


@pytest.fixture(scope="session")
def audit_record(audit_result, platform):
    return record_from_audit(
        audit_result,
        platform=platform,
        descriptor=platform_descriptor("bulldozer"),
        seed=7,
        provenance=provenance_stamp(argv=["test"], campaign="unit"),
    )


def synthetic_record(n: int = 0, *, campaign: str = "synthetic",
                     verdict: str = "", chip: str = "bulldozer",
                     threads: int = 2) -> RegistryRecord:
    """A cheap, valid record (canned program, fabricated measurements)."""
    return RegistryRecord(
        kind="qualify",
        name=f"mark-{n}",
        program={"source": "canned", "stressmark": "a-res"},
        platform=platform_descriptor(chip),
        platform_hash=f"hash-{n:04d}",
        threads=threads,
        droop_v=0.030 + n * 0.001,
        verdict=verdict,
        provenance={"campaign": campaign, "created_at": float(n)},
    )


def with_provenance(record: RegistryRecord, **updates) -> RegistryRecord:
    return dataclasses.replace(
        record, provenance={**record.provenance, **updates},
    )
