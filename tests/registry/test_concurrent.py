"""Two writers, one registry: the flock must serialise index appends."""

import json
import subprocess
import sys
from pathlib import Path

from repro.registry import StressmarkRegistry

#: Runs in a subprocess: publish COUNT synthetic records, offset by START
#: so the two writers interleave distinct ids plus a shared overlap band.
_WORKER = """
import sys
sys.path.insert(0, {src!r})
from repro.registry import RegistryRecord, StressmarkRegistry, platform_descriptor

registry = StressmarkRegistry({directory!r})
start, count = {start}, {count}
for n in range(start, start + count):
    record = RegistryRecord(
        kind="qualify",
        name=f"mark-{{n}}",
        program={{"source": "canned", "stressmark": "a-res"}},
        platform=platform_descriptor("bulldozer"),
        platform_hash=f"hash-{{n:04d}}",
        threads=2,
        droop_v=0.030 + n * 0.001,
        provenance={{"campaign": "contention", "created_at": float(n)}},
    )
    registry.publish(record)
print("done")
"""


def _spawn(directory: Path, start: int, count: int) -> subprocess.Popen:
    src = str(Path(__file__).resolve().parents[2] / "src")
    code = _WORKER.format(src=src, directory=str(directory),
                          start=start, count=count)
    return subprocess.Popen([sys.executable, "-c", code],
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)


class TestTwoProcessContention:
    def test_concurrent_publishes_leave_consistent_store(self, tmp_path):
        directory = tmp_path / "reg"
        # 15 distinct ids each plus a 10-record overlap band both race on.
        first = _spawn(directory, start=0, count=25)
        second = _spawn(directory, start=15, count=25)
        for proc in (first, second):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out

        registry = StressmarkRegistry(directory)
        entries, skipped = registry._read_index()
        # Every index line parsed — interleaved appends would have torn
        # JSON — and no id appears twice despite the overlap band.
        assert skipped == 0
        ids = [entry["record_id"] for entry in entries]
        assert len(ids) == len(set(ids)) == 40
        assert set(ids) == set(registry._object_ids())
        # Each stored object still passes its content hash.
        assert len(registry.records()) == 40
