"""Platform descriptors, configuration hashing, provenance stamps."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import package_version
from repro.errors import RegistryError
from repro.registry import (
    build_platform,
    hash_platform,
    platform_descriptor,
    provenance_stamp,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestDescriptor:
    def test_descriptor_fields(self):
        descriptor = platform_descriptor("phenom", pdn_scale=1.1)
        assert descriptor == {"chip": "phenom", "throttle": None,
                              "pdn_scale": 1.1}

    def test_unknown_chip_rejected(self):
        with pytest.raises(RegistryError, match="unknown chip"):
            platform_descriptor("epyc")

    def test_build_matches_cli_testbed(self):
        from repro.cli._common import _platform

        for chip in ("bulldozer", "phenom"):
            rebuilt = build_platform(platform_descriptor(chip))
            testbed = _platform(chip, None)
            assert hash_platform(rebuilt) == hash_platform(testbed)

    def test_throttle_changes_the_hash(self):
        nominal = build_platform(platform_descriptor("bulldozer"))
        throttled = build_platform(
            platform_descriptor("bulldozer", throttle=1))
        assert hash_platform(nominal) != hash_platform(throttled)

    def test_pdn_scale_changes_the_hash(self):
        nominal = build_platform(platform_descriptor("bulldozer"))
        scaled = build_platform(
            platform_descriptor("bulldozer", pdn_scale=1.1))
        assert hash_platform(nominal) != hash_platform(scaled)

    def test_pdn_scale_matches_fleet_shard_scaling(self):
        from repro.fleet.matrix import Scenario
        from repro.fleet.shard import scenario_platform

        scenario = Scenario(chip="bulldozer", pdn="+10%", threads=2)
        scaled = build_platform(
            platform_descriptor("bulldozer", pdn_scale=scenario.pdn_scale))
        assert hash_platform(scaled) == hash_platform(
            scenario_platform(scenario))


class TestHashStability:
    def test_hash_is_stable_across_processes(self):
        """frozenset iteration order is randomized per process; the hash
        must canonicalize it (a fresh interpreter must agree)."""
        local = hash_platform(build_platform(platform_descriptor("bulldozer")))
        code = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.registry import (build_platform, hash_platform, "
            "platform_descriptor)\n"
            "print(hash_platform(build_platform("
            "platform_descriptor('bulldozer'))))"
        ).format(src=SRC)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == local

    def test_hash_detects_preset_drift(self, platform):
        import dataclasses

        drifted = dataclasses.replace(
            platform.pdn,
            die=dataclasses.replace(
                platform.pdn.die,
                resistance_ohm=platform.pdn.die.resistance_ohm * 1.01,
            ),
        )
        from repro.core.platform import MeasurementPlatform

        other = MeasurementPlatform(platform.chip, drifted)
        assert hash_platform(platform) != hash_platform(other)


class TestStamp:
    def test_stamp_fields(self):
        stamp = provenance_stamp(argv=["repro", "audit"], campaign="nightly",
                                 extra={"telemetry": {"evaluations": 3}})
        assert stamp["campaign"] == "nightly"
        assert stamp["argv"] == ["repro", "audit"]
        assert stamp["repro_version"] == package_version()
        assert stamp["created_at"] > 0
        assert stamp["telemetry"] == {"evaluations": 3}

    def test_version_is_package_metadata(self):
        assert package_version()
        assert package_version()[0].isdigit()
