"""Stage telemetry: every measurement narrates its pipeline stages.

In particular the transient fallback is a modelling event, not a silent
counter bump — the activity StageEvent must carry the reason in
``detail`` and the collector must count it.
"""

from repro.core.platform import MeasurementPlatform
from repro.core.resonance import probe_program
from repro.core.telemetry import StageEvent, TelemetryCollector
from repro.experiments.setup import bulldozer_chip, bulldozer_pdn
from repro.isa import (
    RegisterAllocator,
    ThreadProgram,
    build_kernel,
    default_table,
    make_instruction,
)

TABLE = default_table()


def resonant_program():
    return probe_program(TABLE, hp_count=32, lp_nops=95)


def divider_program():
    # divpd's long unit occupancy defeats periodicity verification under
    # a tight warmup budget (see test_stages.divider_program).
    alloc = RegisterAllocator()
    sub = tuple(make_instruction(TABLE.get(m), alloc)
                for m in ("divpd", "mulpd", "divpd", "add"))
    kernel = build_kernel(sub, replications=3, lp_nops=17, nop_spec=TABLE.nop)
    return ThreadProgram(kernel, 4096)


class Recorder:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def stage_events(self, stage):
        return [e for e in self.events
                if isinstance(e, StageEvent) and e.stage == stage]


def observed_platform(**kwargs):
    chip = bulldozer_chip()
    platform = MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd), **kwargs)
    recorder = Recorder()
    platform.attach_observers([recorder])
    return platform, recorder


class TestStageEvents:
    def test_every_stage_reports_once_per_measurement(self):
        platform, recorder = observed_platform()
        platform.measure_program(resonant_program(), 4)
        for stage in ("compile", "activity", "pdn", "analyze"):
            assert len(recorder.stage_events(stage)) == 1, stage

    def test_transient_fallback_emits_reason(self):
        platform, recorder = observed_platform(warmup_iterations=8)
        platform.measure_program(divider_program(), 4)
        (event,) = recorder.stage_events("activity")
        assert event.path == "transient"
        assert "periodic" in event.detail
        assert "8 iterations" in event.detail

    def test_periodic_path_has_no_fallback_detail(self):
        platform, recorder = observed_platform()
        platform.measure_program(resonant_program(), 4)
        (event,) = recorder.stage_events("activity")
        assert event.path == "periodic"
        assert event.detail == ""


class TestCollectorCountsFallbacks:
    def test_collector_counts_transient_fallbacks(self):
        chip = bulldozer_chip()
        platform = MeasurementPlatform(
            chip, bulldozer_pdn(vdd=chip.vdd), warmup_iterations=8)
        collector = TelemetryCollector()
        platform.attach_observers([collector])
        platform.measure_program(divider_program(), 4)
        assert collector.stage_fallbacks == 1
        assert "pdn" in collector.stage_wall_s

    def test_periodic_measurements_do_not_count_as_fallbacks(self):
        platform = MeasurementPlatform(
            bulldozer_chip(), bulldozer_pdn(vdd=1.2))
        collector = TelemetryCollector()
        platform.attach_observers([collector])
        platform.measure_program(resonant_program(), 4)
        assert collector.stage_fallbacks == 0
