"""Unit tests for the staged measurement pipeline's building blocks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.experiments.setup import bulldozer_chip, bulldozer_pdn
from repro.isa import (
    RegisterAllocator,
    ThreadProgram,
    build_kernel,
    default_table,
    make_instruction,
)
from repro.pipeline import (
    ActivityProfile,
    ActivityStage,
    CompiledProgram,
    CompileStage,
    MeasurementPipeline,
    MeasureRequest,
    PdnResponse,
    PipelineCounters,
    StageCache,
    artifact_key,
)

TABLE = default_table()


def resonant_program():
    from repro.core.resonance import probe_program

    return probe_program(TABLE, hp_count=32, lp_nops=95)


def divider_program():
    # divpd's 20-cycle unit occupancy yields long non-repeating activity
    # patterns, so the profile never verifies as periodic.
    alloc = RegisterAllocator()
    sub = tuple(make_instruction(TABLE.get(m), alloc)
                for m in ("divpd", "mulpd", "divpd", "add"))
    kernel = build_kernel(sub, replications=3, lp_nops=17, nop_spec=TABLE.nop)
    return ThreadProgram(kernel, 4096)


@pytest.fixture(scope="module")
def pipeline():
    chip = bulldozer_chip()
    return MeasurementPipeline(chip, bulldozer_pdn(vdd=chip.vdd))


class TestArtifactKey:
    def test_deterministic(self):
        assert artifact_key("a", 1, 2.5) == artifact_key("a", 1, 2.5)

    def test_sensitive_to_every_part(self):
        base = artifact_key("a", 1)
        assert artifact_key("a", 2) != base
        assert artifact_key("b", 1) != base
        assert artifact_key("a", 1, None) != base

    def test_short_hex(self):
        key = artifact_key("anything")
        assert len(key) == 16
        int(key, 16)  # must be hex


class TestStageCache:
    def test_hit_and_miss_counters(self):
        cache = StageCache("test")
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = StageCache("test", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least-recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2


class TestCompileStage:
    def test_produces_typed_artifact_with_key(self, pipeline):
        request = MeasureRequest(program=resonant_program(), threads=4)
        compiled = pipeline.compile.run(request)
        assert isinstance(compiled, CompiledProgram)
        assert compiled.threads == 4
        assert len(compiled.key) == 16

    def test_memoised_per_program(self, pipeline):
        request = MeasureRequest(program=resonant_program(), threads=4)
        first = pipeline.compile.run(request)
        second = pipeline.compile.run(request)
        assert second is first  # the repr-hash runs once per program

    def test_key_depends_on_threads(self, pipeline):
        program = resonant_program()
        one = pipeline.compile.run(MeasureRequest(program=program, threads=1))
        four = pipeline.compile.run(MeasureRequest(program=program, threads=4))
        assert one.key != four.key


class TestActivityStage:
    def test_periodic_profile(self, pipeline):
        compiled = pipeline.compile.run(
            MeasureRequest(program=resonant_program(), threads=4))
        profile = pipeline.activity.run(compiled)
        assert isinstance(profile, ActivityProfile)
        assert profile.path == "periodic"
        assert profile.period_cycles is not None
        assert profile.fallback_reason == ""

    def test_profile_cache_counts_hits(self):
        chip = bulldozer_chip()
        counters = PipelineCounters()
        stage = ActivityStage(chip, 48, counters)
        compiled = CompileStage(chip).run(
            MeasureRequest(program=resonant_program(), threads=4))
        stage.run(compiled)
        assert counters.profile_cache_hits == 0
        stage.run(compiled)
        assert counters.profile_cache_hits == 1

    def test_transient_fallback_names_the_reason(self):
        # With the minimum warmup budget the div-heavy kernel cannot
        # verify a steady period, so the stage must fall back and say why.
        chip = bulldozer_chip()
        tight = MeasurementPipeline(
            chip, bulldozer_pdn(vdd=chip.vdd), warmup_iterations=8)
        compiled = tight.compile.run(
            MeasureRequest(program=divider_program(), threads=4))
        profile = tight.activity.run(compiled)
        assert profile.path == "transient"
        assert "periodic" in profile.fallback_reason
        assert "8 iterations" in profile.fallback_reason


class TestPdnStage:
    def test_response_artifact(self, pipeline):
        compiled = pipeline.compile.run(
            MeasureRequest(program=resonant_program(), threads=4))
        profile = pipeline.activity.run(compiled)
        phases = (0,) * pipeline.chip.module_count
        response = pipeline.pdn_stage.run(
            profile, phases=phases, supply=pipeline.chip.vdd)
        assert isinstance(response, PdnResponse)
        assert not response.batched
        assert response.supply_v == pipeline.chip.vdd
        assert np.min(response.voltage.samples) < pipeline.chip.vdd

    def test_response_cache_hit_on_repeat(self, pipeline):
        compiled = pipeline.compile.run(
            MeasureRequest(program=resonant_program(), threads=4))
        profile = pipeline.activity.run(compiled)
        phases = (0,) * pipeline.chip.module_count
        hits = pipeline.pdn_stage.cache.hits
        first = pipeline.pdn_stage.run(
            profile, phases=phases, supply=1.17)
        second = pipeline.pdn_stage.run(
            profile, phases=phases, supply=1.17)
        assert pipeline.pdn_stage.cache.hits == hits + 1
        assert second.voltage.max_droop_v == first.voltage.max_droop_v


class TestPipelineValidation:
    def test_vdd_mismatch_rejected(self):
        chip = bulldozer_chip()
        with pytest.raises(ConfigurationError):
            MeasurementPipeline(chip, bulldozer_pdn(vdd=chip.vdd + 0.1))

    def test_phase_vector_length_checked(self, pipeline):
        with pytest.raises(MeasurementError):
            pipeline.measure(MeasureRequest(
                program=resonant_program(), threads=4, module_phases=(1, 2)))

    def test_nonpositive_supply_rejected(self, pipeline):
        with pytest.raises(ConfigurationError):
            pipeline.measure(MeasureRequest(
                program=resonant_program(), threads=4, supply_v=-1.0))
