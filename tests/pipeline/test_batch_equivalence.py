"""Property test: batched PDN solves are bit-identical to serial ones.

The batch backend's whole contract is that vectorizing the PDN stage is
a pure wall-clock optimisation — every ``max_droop_v`` and sensitivity
vector must match a per-request serial measurement exactly, across the
periodic path, the jittered 2-SMT path, supply sweeps, and dithering
phase offsets.  Serial and batched sides run on *independent* platforms
(separate caches) so equality is earned, not served from a shared cache.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import genome_to_program
from repro.core.genome import GenomeSpace
from repro.core.platform import MeasurementPlatform, SimulatorBackend
from repro.experiments.setup import bulldozer_chip, bulldozer_pdn
from repro.isa import default_table
from repro.pipeline import BatchMeasurementBackend, MeasureRequest

TABLE = default_table()
SPACE = GenomeSpace(table=TABLE, slots=8, replications=2,
                    lp_nops_min=0, lp_nops_max=48)


def _serial_platform():
    chip = bulldozer_chip()
    return MeasurementPlatform(chip, bulldozer_pdn(vdd=chip.vdd))


def _batched_platform():
    chip = bulldozer_chip()
    backend = SimulatorBackend(chip, bulldozer_pdn(vdd=chip.vdd))
    return MeasurementPlatform(backend=BatchMeasurementBackend(backend))


# Shared across hypothesis examples: module-trace caches warm up, and the
# serial/batched sides still never share a cache with each other.
SERIAL = _serial_platform()
BATCHED = _batched_platform()


def _random_requests(rng):
    """A mixed batch: 4T periodic and 8T jittered, random grid points."""
    requests = []
    for threads in (4, 4, 8):
        genome = SPACE.random_genome(rng)
        program = genome_to_program(genome, SPACE)
        supply = (
            float(rng.uniform(1.08, 1.32)) if rng.random() < 0.5 else None
        )
        phases = (
            tuple(int(p) for p in rng.integers(0, 64, size=4))
            if rng.random() < 0.5 else None
        )
        requests.append(MeasureRequest(
            program=program, threads=threads,
            supply_v=supply, module_phases=phases,
        ))
    return requests


class TestBatchSerialEquivalence:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_bit_identical_across_random_grids(self, seed):
        rng = np.random.default_rng(seed)
        requests = _random_requests(rng)
        serial = [
            SERIAL.measure_program(
                r.program, r.threads,
                supply_v=r.supply_v,
                module_phases=(
                    list(r.module_phases) if r.module_phases else None
                ),
            )
            for r in requests
        ]
        batched = BATCHED.measure_programs(requests)
        assert len(batched) == len(serial)
        for expect, got in zip(serial, batched):
            assert got.max_droop_v == expect.max_droop_v
            assert np.array_equal(got.sensitivity, expect.sensitivity)
            assert np.array_equal(got.voltage.samples, expect.voltage.samples)
            assert got.supply_v == expect.supply_v
            assert got.period_cycles == expect.period_cycles

    def test_batch_actually_batches(self):
        rng = np.random.default_rng(7)
        platform = _batched_platform()
        genome = SPACE.random_genome(rng)
        program = genome_to_program(genome, SPACE)
        supplies = np.linspace(1.1, 1.3, 6)
        platform.measure_programs([
            MeasureRequest(program=program, threads=4, supply_v=float(v))
            for v in supplies
        ])
        counters = platform.backend.pipeline.counters
        assert counters.batched_solves >= 1
        assert counters.batched_rows == len(supplies)

    def test_order_preserved_in_mixed_path_batch(self):
        """Requests regrouped by path must come back in request order."""
        rng = np.random.default_rng(11)
        programs = [
            genome_to_program(SPACE.random_genome(rng), SPACE)
            for _ in range(3)
        ]
        requests = [
            MeasureRequest(program=programs[0], threads=8),   # jittered
            MeasureRequest(program=programs[1], threads=4),   # periodic
            MeasureRequest(program=programs[2], threads=4),
        ]
        serial = [
            SERIAL.measure_program(r.program, r.threads) for r in requests
        ]
        batched = BATCHED.measure_programs(requests)
        for expect, got in zip(serial, batched):
            assert got.max_droop_v == expect.max_droop_v
