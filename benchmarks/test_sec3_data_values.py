"""Bench SEC3-DATA: operand data values change the droop by ~10 %."""

from repro.experiments.sec3_data_values import report, run_sec3_data_values
from repro.experiments.setup import bulldozer_testbed
from repro.isa.data_patterns import DataPattern
from repro.isa.opcodes import default_table


def test_sec3_data_values(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_sec3_data_values(platform, default_table()),
        rounds=1, iterations=1,
    )
    save_report("sec3_data_values", report(result))

    droops = result.droops
    assert droops[DataPattern.MAX_TOGGLE] > droops[DataPattern.RANDOM]
    assert droops[DataPattern.RANDOM] > droops[DataPattern.ZEROS]
    # "on the order of 10%"
    assert 0.04 < result.swing < 0.20
