"""Bench TAB2: FPU throttling impact, including the real AUDIT re-run.

Runs the full closed loop against the throttled platform to generate
A-Res-Th (the paper's "AUDIT finds another path" result), rather than the
canned approximation used by the fast tests.
"""

from repro.experiments.setup import bulldozer_testbed
from repro.experiments.table2_throttling import report, run_table2
from repro.isa.opcodes import default_table


def test_table2_fpu_throttling(benchmark, save_report):
    free = bulldozer_testbed()
    throttled = bulldozer_testbed(fp_throttle=1)
    result = benchmark.pedantic(
        lambda: run_table2(free, throttled, default_table(), audit_rerun=True),
        rounds=1, iterations=1,
    )
    save_report("table2_throttling", report(result))

    for name in ("SM1", "A-Res", "SM-Res"):
        assert (result.row(name, throttled=True).droop_v
                < result.row(name, throttled=False).droop_v)

    def retained(name):
        return (result.row(name, throttled=True).droop_v
                / result.row(name, throttled=False).droop_v)

    # Least effective for SM1 (its integer stress path survives).
    assert retained("SM1") > retained("A-Res")
    assert retained("SM1") > retained("SM-Res")
    # AUDIT works around the throttle but cannot fully recover.
    th = result.row("A-Res-Th", throttled=True)
    assert th.droop_v > result.row("SM-Res", throttled=True).droop_v
    assert th.droop_v < result.row("A-Res", throttled=False).droop_v
