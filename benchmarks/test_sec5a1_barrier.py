"""Bench SEC5A1: barrier stressmark — release skew damps the droop."""

from repro.experiments.sec5a1_barrier import report, run_sec5a1
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_sec5a1_barrier_stressmark(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_sec5a1(platform, default_table()), rounds=1, iterations=1
    )
    save_report("sec5a1_barrier", report(result))

    # "The resulting droop, however, was not significant" — the natural
    # release skew destroys a large fraction of the ideal aligned droop.
    assert result.natural_droop_v < result.ideal_droop_v
    assert result.damping > 0.2
