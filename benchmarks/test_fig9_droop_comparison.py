"""Bench FIG9: the headline droop comparison grid.

All SPEC/PARSEC models, all six stressmarks, 1T/2T/4T/8T, droops relative
to 4T SM1 — the full figure.
"""

from repro.experiments.fig9_droop_comparison import report, run_fig9
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_fig9_droop_comparison(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_fig9(platform, default_table(),
                         workload_duration_cycles=120_000),
        rounds=1, iterations=1,
    )
    save_report("fig9_droop_comparison", report(result))

    # Headline shapes (paper Section V.A).
    assert result.relative("A-Res", 4) > result.relative("SM1", 4)
    assert result.relative("SM-Res", 4) > result.relative("SM1", 4)
    bench_best = max(
        result.relative(name, 4)
        for name, suite in result.suites.items()
        if suite in ("spec", "parsec")
    )
    assert result.relative("SM1", 4) > bench_best
    for name in ("SM1", "SM-Res", "A-Res"):
        assert result.droops[name][8] < result.droops[name][4]
    assert result.droops["A-Res-8T"][8] > result.droops["A-Res"][8]
    assert result.droops["A-Res-8T"][4] < result.droops["A-Res"][4]
    assert result.relative("zeusmp", 4) == max(
        result.relative(n, 4) for n, s in result.suites.items() if s == "spec"
    )
