"""Bench ABLATIONS: design-choice studies for DESIGN.md sections 5/6."""

from repro.experiments.ablations import (
    report_ga_budget,
    report_jitter,
    report_pdn_damping,
    run_ga_budget_ablation,
    run_jitter_ablation,
    run_pdn_damping_ablation,
)
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_ablation_smt_jitter(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_jitter_ablation(platform, default_table()),
        rounds=1, iterations=1,
    )
    save_report("ablation_smt_jitter", report_jitter(result))

    # Without the phase walk the SMT pair holds lockstep and the 8T loss
    # (mostly) disappears; a realistic walk decoheres the resonance.
    realistic = result.droops_8t[2]
    assert realistic < result.lockstep_8t
    assert realistic < result.droop_4t


def test_ablation_ga_budget(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_ga_budget_ablation(platform, default_table()),
        rounds=1, iterations=1,
    )
    save_report("ablation_ga_budget", report_ga_budget(result))

    budgets = sorted(result.droops)
    droops = [result.droops[g] for g in budgets]
    # More budget never hurts (elitism + memoised fitness).
    assert droops == sorted(droops)


def test_ablation_pdn_damping(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_pdn_damping_ablation(default_table()),
        rounds=1, iterations=1,
    )
    save_report("ablation_pdn_damping", report_pdn_damping(result))

    # More damping -> lower peak impedance -> smaller resonant droops,
    # with A-Res and SM-Res tracking together.
    peaks = [row[1] for row in result.rows]
    a_res = [row[2] for row in result.rows]
    sm_res = [row[3] for row in result.rows]
    assert peaks == sorted(peaks, reverse=True)
    assert a_res == sorted(a_res, reverse=True)
    assert sm_res == sorted(sm_res, reverse=True)
