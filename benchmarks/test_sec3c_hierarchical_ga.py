"""Bench SEC3C: hierarchical (sub-blocked) vs. flat GA at equal budget.

Paper: sub-blocking gave ~19 % higher droop in a sixth of the time.  At an
equal evaluation budget the flat search must cover a solution space that is
|pool|^(S*K*width) instead of |pool|^(K*width), and lands lower.
"""

from repro.experiments.sec3c_hierarchical import report, run_sec3c
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_sec3c_hierarchical_vs_flat(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_sec3c(platform, default_table()), rounds=1, iterations=1
    )
    save_report("sec3c_hierarchical_ga", report(result))

    # Hierarchical generation wins at the same budget (paper: ~19 %).
    assert result.hierarchical_droop_v > result.flat_droop_v
    assert result.improvement > 0.05
