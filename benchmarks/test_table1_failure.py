"""Bench TAB1: voltage at failure relative to A-Res (4T, 12.5 mV steps)."""

from repro.analysis.report import format_kv_table
from repro.experiments.setup import bulldozer_testbed
from repro.experiments.table1_failure import TABLE1_ORDER, report, run_table1
from repro.isa.opcodes import default_table


def test_table1_voltage_at_failure(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_table1(platform, default_table()), rounds=1, iterations=1
    )
    stats = platform.stats()
    telemetry = format_kv_table(
        [
            ("platform measurements", stats.measurements),
            ("module-simulator runs", stats.module_runs),
            ("module-trace cache hits", stats.module_cache_hits),
            ("module-simulator time", f"{stats.sim_time_s:.2f} s"),
            ("PDN-solve time", f"{stats.pdn_time_s:.2f} s"),
        ],
        title="sweep telemetry",
    )
    save_report("table1_failure", report(result) + "\n\n" + telemetry)

    # The supply sweep re-solves the PDN at every step but must reuse each
    # program's module simulation from the first measurement.
    assert stats.module_cache_hits > stats.module_runs

    vf = result.failure_voltages
    # Paper ordering: A-Res > SM-Res > SM1 > A-Ex > SM2 > benchmarks.
    ordered = [vf[name] for name in TABLE1_ORDER]
    assert ordered == sorted(ordered, reverse=True)
    assert vf["A-Res"] == max(vf.values())
    # SM2's sensitive paths beat the benchmarks despite a benchmark-class
    # droop (the Section V.A.4 insight).
    assert vf["SM2"] > vf["zeusmp"]
