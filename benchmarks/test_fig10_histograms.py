"""Bench FIG10: droop-event histograms for zeusmp, SM1, and A-Res."""

from repro.experiments.fig10_histograms import report, run_fig10
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_fig10_histograms(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_fig10(platform, default_table(), samples=2_000_000),
        rounds=1, iterations=1,
    )
    save_report("fig10_histograms", report(result))

    # zeusmp: least variation; SM1: nominal mass + tail; A-Res: mass near
    # the worst droop.
    assert result.spread("zeusmp") < result.spread("SM1")
    assert result.spread("zeusmp") < result.spread("A-Res")
    assert result.modal_offset("A-Res") > result.modal_offset("SM1")
    assert result.modal_offset("A-Res") > 2 * result.modal_offset("zeusmp")
