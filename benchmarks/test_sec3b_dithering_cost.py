"""Bench SEC3B: dithering sweep cost (the paper's 3.3 ms / 18.35 min / 67 ms)."""

import pytest

from repro.experiments.sec3b_dithering_cost import report, run_sec3b


def test_sec3b_dithering_cost(benchmark, save_report):
    result = benchmark.pedantic(run_sec3b, rounds=1, iterations=1)
    save_report("sec3b_dithering_cost", report(result))

    assert result.exact_4core_s == pytest.approx(3.3e-3, rel=0.01)
    assert result.exact_8core_s / 60 == pytest.approx(18.35, rel=0.01)
    assert result.approx_8core_delta3_s == pytest.approx(67e-3, rel=0.05)
    assert result.small_instance_full_coverage
    assert result.aligned_is_worst
