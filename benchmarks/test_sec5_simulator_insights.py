"""Bench SEC5-SIM: droop-only (simulator) analysis vs hardware failure view."""

from repro.experiments.sec5_simulator_insights import (
    report,
    run_sec5_simulator_insights,
)
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_sec5_simulator_insights(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_sec5_simulator_insights(platform, default_table()),
        rounds=1, iterations=1,
    )
    save_report("sec5_simulator_insights", report(result))

    # Droop ranking and failure ranking must diverge (the paper's point 1):
    # SM2 climbs the failure ranking past its droop rank.
    assert "SM2" in result.rank_inversions
    # The OS perturbs the droop over a range a fixed-alignment simulation
    # cannot see (points 2 and 3).
    lo, hi = result.natural_droop_range
    assert hi > lo
    assert not (lo <= result.fixed_alignment_droop <= hi) or (hi - lo) > 0.005
