"""Bench FIG3: regenerate the PDN resonance figure (frequency + time domain)."""

from repro.experiments.fig3_resonances import report, run_fig3
from repro.experiments.setup import bulldozer_testbed


def test_fig3_resonances(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_fig3(platform), rounds=1, iterations=1
    )
    save_report("fig3_resonances", report(result))

    labels = [r.label for r in result.sweep.resonances]
    assert labels == ["third", "second", "first"]
    first = result.sweep.first_droop
    assert 50e6 <= first.frequency_hz <= 200e6
    assert result.droop_of("first") > result.droop_of("second")
    assert result.droop_of("first") > result.droop_of("third")
