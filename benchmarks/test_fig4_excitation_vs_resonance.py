"""Bench FIG4: first-droop excitation vs. first-droop resonance."""

from repro.experiments.fig4_excitation_vs_resonance import report, run_fig4
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_fig4_excitation_vs_resonance(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_fig4(platform, default_table()), rounds=1, iterations=1
    )
    save_report("fig4_excitation_vs_resonance", report(result))

    # The resonant pattern builds in amplitude beyond the single event.
    assert result.amplification > 1.2
