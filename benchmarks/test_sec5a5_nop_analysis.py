"""Bench SEC5A5: the NOP→ADD loop analysis on A-Res."""

import pytest

from repro.experiments.sec5a5_nop_analysis import report, run_sec5a5
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_sec5a5_nop_analysis(benchmark, save_report):
    platform = bulldozer_testbed()
    result = benchmark.pedantic(
        lambda: run_sec5a5(platform, default_table()), rounds=1, iterations=1
    )
    save_report("sec5a5_nop_analysis", report(result))

    # Paper: the ADD-substituted A-Res generated a smaller droop and its
    # pattern frequency shifted below the resonance.
    assert result.droop_loss_v > 0.005
    assert result.frequency_shift_hz < -1e6
    assert result.nop_fundamental_hz == pytest.approx(100e6, rel=0.05)
