"""Bench FIG6: natural dithering scope shot (100 ms, 16 ms OS ticks)."""

from repro.core.resonance import probe_program
from repro.experiments.fig6_natural_dithering import report, run_fig6
from repro.experiments.setup import bulldozer_testbed
from repro.isa.opcodes import default_table


def test_fig6_natural_dithering(benchmark, save_report):
    platform = bulldozer_testbed()
    program = probe_program(default_table(), hp_count=32, lp_nops=95)
    result = benchmark.pedantic(
        lambda: run_fig6(platform, program, duration_s=0.1, seed=6),
        rounds=1, iterations=1,
    )
    save_report("fig6_natural_dithering", report(result))

    assert len(result.ticks) == 7  # ~16 ms cadence over 100 ms
    assert result.envelope_variation > 0
    assert result.best_natural_droop_v <= result.aligned_droop_v
