"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure and writes its report to
``benchmarks/reports/<name>.txt`` (pytest captures stdout, so artifacts go
to disk where they survive).
"""

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def save_report():
    REPORTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")
        return path

    return _save
