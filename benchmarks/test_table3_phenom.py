"""Bench TAB3: AUDIT adapts to the Phenom II — full GA re-run included."""

from repro.experiments.setup import phenom_testbed
from repro.experiments.table3_phenom import report, run_table3
from repro.isa.opcodes import default_table


def test_table3_phenom(benchmark, save_report):
    platform = phenom_testbed()
    result = benchmark.pedantic(
        lambda: run_table3(platform, default_table(), audit_rerun=True),
        rounds=1, iterations=1,
    )
    save_report("table3_phenom", report(result))

    assert result.sm1_rejected  # FMA4 code cannot run
    # AUDIT's regenerated stressmark is comparable to or better than SM2.
    assert result.relative_droop("A-Res") >= 1.0
    assert result.failure_voltages["A-Res"] >= result.failure_voltages["SM2"]
    # AUDIT found the new part's (lower) resonance.
    assert result.resonance_hz is not None
    assert result.resonance_hz < 100e6
