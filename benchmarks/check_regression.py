#!/usr/bin/env python
"""CI benchmark-regression gate for the AUDIT evaluation path.

Runs the canonical short campaign (the same scenario as ``repro
bench-evals``), captures throughput and determinism metrics, and compares
them against a committed baseline JSON:

* **determinism metrics** — max droop, best fitness, evaluation count,
  resonance frequency, and the qualification verdict/robustness of the
  winning stressmark — must match the baseline *exactly*: they are pure
  simulation outputs, so any drift is a behaviour change, not noise;
* **throughput** (campaign and qualification evaluations/second) may
  wobble with the runner, but a drop of more than ``--tolerance``
  (default 15 %) fails the gate;
* **batched PDN solves** must stay bit-identical to serial measurement
  (``batched_droop_match``, exact) and at least 2x faster through the
  PDN stage (``batched_pdn_speedup``, an absolute floor rather than a
  baseline-relative tolerance);
* **observability** must stay off the physics and off the hot path: a
  fixed measurement sweep run under a live tracer must cost at most 3 %
  more than the untraced run (``obs_overhead`` ceiling), reproduce every
  droop bit for bit (``obs_droop_match``, exact), and emit a
  deterministic span count (``obs_spans``, exact).

Usage::

    python benchmarks/check_regression.py                # gate against baseline
    python benchmarks/check_regression.py --update       # re-baseline
    python benchmarks/check_regression.py --out fresh.json
    python benchmarks/check_regression.py --slowdown 2.0 # prove the gate trips

``--slowdown N`` stretches every platform measurement by sleeping
``(N - 1) x`` its own duration — droop and evaluation counts are untouched,
only throughput drops, which is exactly what the gate must catch.

Exit codes: 0 pass, 1 regression, 2 usage error / missing baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA_VERSION = 6
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" / "bulldozer.json"
DEFAULT_SCENARIO = {
    "chip": "bulldozer",
    "threads": 4,
    "population": 12,
    "generations": 4,
    "seed": 1,
}
EXACT_METRICS = ("max_droop_v", "best_fitness", "evaluations", "resonance_hz",
                 "qualify_verdict", "qualify_robustness",
                 "qualify_evaluations", "batched_droop_match",
                 "fleet_droop_match", "fleet_shards",
                 "registry_records", "registry_verify_match",
                 "obs_droop_match", "obs_spans")
THROUGHPUT_METRICS = ("evals_per_second", "qualify_evals_per_second")
#: Absolute floors (not baseline-relative): the batched PDN path must beat
#: serial per-measurement solves by at least this factor, and a fleet
#: shard must retain at least this fraction of a standalone campaign's
#: evaluation throughput (orchestration overhead stays off the hot path).
FLOOR_METRICS = {"batched_pdn_speedup": 2.0,
                 "fleet_shard_throughput_ratio": 0.9}
#: Absolute ceilings: registry publishing must cost a negligible
#: fraction of the campaign itself, and tracing the measurement hot
#: path must add at most 3 % to an untraced sweep.
CEILING_METRICS = {"registry_publish_overhead": 0.05,
                   "obs_overhead": 0.03}


class SlowdownBackend:
    """Measurement backend that stretches wall time by a constant factor.

    Sleeps ``(factor - 1) x`` the inner measurement's own duration, so the
    synthetic regression scales with the real evaluation cost: results are
    bit-identical, throughput is ``1/factor``.
    """

    def __init__(self, inner, factor: float):
        self.inner = inner
        self.chip = inner.chip
        self.factor = factor

    def _stretched(self, measure):
        start = time.perf_counter()
        result = measure()
        time.sleep((self.factor - 1.0) * (time.perf_counter() - start))
        return result

    def measure_program(self, *args, **kwargs):
        return self._stretched(
            lambda: self.inner.measure_program(*args, **kwargs))

    def measure_current(self, *args, **kwargs):
        return self._stretched(
            lambda: self.inner.measure_current(*args, **kwargs))

    def stats(self):
        return self.inner.stats()


def _batched_pdn_benchmark(scenario: dict) -> dict:
    """Serial vs batched PDN throughput on a canonical probe grid.

    Measures one resonant probe across a supply sweep plus a set of
    module-phase alignments — the grids the closed loop actually batches —
    first serially, then through the batch backend (sharing the serial
    platform's activity stage so only the PDN solves differ).  Returns the
    wall-clock speedup and whether every droop/sensitivity matched bit for
    bit.
    """
    import numpy as np

    from repro.core.platform import MeasurementPlatform, SimulatorBackend
    from repro.core.resonance import probe_program
    from repro.experiments.setup import bulldozer_testbed, phenom_testbed
    from repro.isa.opcodes import default_table
    from repro.pipeline.artifacts import MeasureRequest
    from repro.pipeline.batch import BatchMeasurementBackend

    testbed = {"bulldozer": bulldozer_testbed, "phenom": phenom_testbed}
    serial = testbed[scenario["chip"]]()
    threads = scenario["threads"]
    pool = default_table().supported_on(serial.chip.extensions)
    program = probe_program(pool, hp_count=32, lp_nops=95)
    vdd = serial.chip.vdd
    requests = [
        MeasureRequest(program=program, threads=threads,
                       supply_v=float(supply))
        for supply in np.linspace(vdd - 0.06, vdd + 0.06, 24)
    ] + [
        MeasureRequest(program=program, threads=threads,
                       module_phases=(k,) + (0,) * (serial.chip.module_count - 1))
        for k in range(1, 9)
    ]
    # Warm the activity profile so both sides time pure PDN-stage work.
    serial.measure_program(program, threads)

    start = time.perf_counter()
    serial_results = [
        serial.measure_program(
            program, request.threads,
            module_phases=(list(request.module_phases)
                           if request.module_phases is not None else None),
            supply_v=request.supply_v,
        )
        for request in requests
    ]
    serial_wall = time.perf_counter() - start

    batched = MeasurementPlatform(backend=BatchMeasurementBackend(
        SimulatorBackend(serial.chip, serial.pdn,
                         share_stages_with=serial.backend)
    ))
    start = time.perf_counter()
    batch_results = batched.measure_programs(requests)
    batch_wall = time.perf_counter() - start

    droop_match = all(
        s.max_droop_v == b.max_droop_v
        and np.array_equal(s.sensitivity, b.sensitivity)
        for s, b in zip(serial_results, batch_results)
    )
    return {
        "batched_pdn_speedup": round(serial_wall / batch_wall, 2),
        "batched_droop_match": bool(droop_match),
        "batched_rows": len(requests),
    }


def _obs_benchmark(scenario: dict) -> dict:
    """Tracing overhead on the measurement hot path.

    Measures a set of distinct probe programs — so every measurement
    runs the full compile → activity → PDN pipeline, the same work a
    campaign evaluation does — on two fresh platforms, one bare and one
    under a live :class:`~repro.obs.Tracer` feeding a span buffer.  The
    two sides interleave *per measurement* with alternating order, so
    scheduler and frequency noise (which on shared runners drifts on a
    ~100 ms scale and reads as a phantom 5 %+ overhead in any
    leg-vs-leg comparison) lands on both sides equally; the overhead is
    the median of the per-pair traced/bare ratios — same program,
    back-to-back runs — which cancels the cost differences between
    programs that make a plain median-vs-median unstable.  The
    collector is paused around the timed loop so a cycle collection
    triggered by one side's allocations is not billed to whichever
    measurement it happened to land in.
    Tracing must never perturb the physics, so the traced droops have
    to reproduce the bare run bit for bit, and the span count is a
    deterministic output like any other.
    """
    import gc
    import statistics

    from repro.core.resonance import probe_program
    from repro.experiments.setup import bulldozer_testbed, phenom_testbed
    from repro.isa.opcodes import default_table
    from repro.obs import Tracer, tracing
    from repro.obs.spans import SpanBuffer

    testbed = {"bulldozer": bulldozer_testbed, "phenom": phenom_testbed}
    threads = scenario["threads"]
    chip = testbed[scenario["chip"]]().chip
    pool = default_table().supported_on(chip.extensions)
    programs = [probe_program(pool, hp_count=32, lp_nops=nops)
                for nops in range(16)]

    ratios = []
    spans = 0
    droop_match = True
    for repeat in range(3):
        bare_platform = testbed[scenario["chip"]]()
        traced_platform = testbed[scenario["chip"]]()
        buffer = SpanBuffer(cap=4096)
        tracer = Tracer([buffer])
        gc.collect()
        gc.disable()
        try:
            for index, program in enumerate(programs):

                def bare_leg():
                    start = time.perf_counter()
                    result = bare_platform.measure_program(program, threads)
                    return result, time.perf_counter() - start

                def traced_leg():
                    start = time.perf_counter()
                    with tracing(tracer):
                        result = traced_platform.measure_program(
                            program, threads)
                    return result, time.perf_counter() - start

                if (index + repeat) % 2:
                    bare, bare_wall = bare_leg()
                    traced, traced_wall = traced_leg()
                else:
                    traced, traced_wall = traced_leg()
                    bare, bare_wall = bare_leg()
                ratios.append(traced_wall / bare_wall)
                droop_match = (droop_match
                               and bare.max_droop_v == traced.max_droop_v)
        finally:
            gc.enable()
        spans = len(buffer.records)
    overhead = statistics.median(ratios) - 1.0
    return {
        "obs_overhead": round(max(overhead, 0.0), 4),
        "obs_droop_match": bool(droop_match),
        "obs_spans": spans,
    }


def _fleet_benchmark(scenario: dict) -> dict:
    """Per-shard fleet overhead versus a standalone campaign.

    Runs the same campaign twice: once standalone through
    :func:`repro.fleet.shard.run_shard` (no orchestration), then as a
    two-chain fleet (nominal + perturbed PDN, one shard each) under the
    orchestrator's serial scheduler.  A single worker keeps the ratio a
    pure measure of orchestration overhead (chain bookkeeping,
    checkpointing, result banking) rather than of how many cores the
    runner happens to have — the parallel pool path is covered by the
    fleet-smoke CI job.  Also checks the fleet's nominal shard reproduces
    the standalone droop bit for bit.
    """
    import shutil
    import tempfile

    from repro.fleet import FleetOrchestrator, ScenarioMatrix
    from repro.fleet.shard import ShardSpec, run_shard

    matrix = ScenarioMatrix(
        chip=(scenario["chip"],), threads=(2,), budget=("8x4",),
        pdn=("nominal", "+10%"), seed=(1,),
    )
    serial_dir = tempfile.mkdtemp(prefix="bench-fleet-serial-")
    fleet_dir = tempfile.mkdtemp(prefix="bench-fleet-")
    try:
        standalone = run_shard(ShardSpec(
            scenario=matrix.expand()[0], shard_dir=serial_dir,
        ))
        start = time.perf_counter()
        report = FleetOrchestrator(matrix, fleet_dir, workers=1).run()
        fleet_wall = time.perf_counter() - start
        shard_eps = [result.timing["evals_per_second"]
                     for result in report.ok_shards]
        nominal = next(result for result in report.ok_shards
                       if result.scenario["pdn"] == "nominal")
        serial_eps = standalone.timing["evals_per_second"]
        ratio = (sum(shard_eps) / len(shard_eps)) / serial_eps
        return {
            "fleet_shard_throughput_ratio": round(ratio, 3),
            "fleet_droop_match": bool(
                nominal.droop_v == standalone.droop_v
            ),
            "fleet_shards": len(report.ok_shards),
            **_registry_benchmark(report, fleet_wall),
        }
    finally:
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(fleet_dir, ignore_errors=True)


def _registry_benchmark(report, fleet_wall: float) -> dict:
    """Registry publish overhead and replay fidelity for a fleet's shards.

    Publishes every OK shard of *report* into a scratch registry, timing
    the complete publish path (content hashing, atomic object write,
    index append, flock) against the campaign's own wall clock — the
    overhead a ``--registry`` flag adds to a real fleet.  Then replays
    one published record through ``verify`` and reports whether the
    recorded droop reproduced bit for bit.
    """
    import shutil
    import tempfile

    from repro.registry import (
        StressmarkRegistry,
        provenance_stamp,
        record_from_shard,
        verify_record,
    )

    registry_dir = tempfile.mkdtemp(prefix="bench-registry-")
    try:
        stamp = provenance_stamp(campaign="bench")
        records = [record_from_shard(result, provenance=stamp)
                   for result in report.ok_shards]
        start = time.perf_counter()
        registry = StressmarkRegistry(registry_dir)
        outcomes = [registry.publish(record) for record in records]
        publish_wall = time.perf_counter() - start
        verified = verify_record(registry.get(outcomes[0].record_id))
        return {
            "registry_publish_overhead": round(publish_wall / fleet_wall, 4),
            "registry_records": len(outcomes),
            "registry_verify_match": bool(verified.ok),
        }
    finally:
        shutil.rmtree(registry_dir, ignore_errors=True)


def collect_metrics(scenario: dict | None = None,
                    slowdown: float = 1.0) -> dict:
    """Run the bench campaign and return a baseline-shaped payload."""
    from repro.core.audit import AuditConfig, AuditRunner
    from repro.core.ga import GaConfig
    from repro.core.platform import MeasurementPlatform
    from repro.core.qualify import QualifyConfig, StressmarkQualifier
    from repro.core.telemetry import TelemetryCollector
    from repro.experiments.setup import bulldozer_testbed, phenom_testbed

    scenario = dict(scenario or DEFAULT_SCENARIO)
    testbed = {"bulldozer": bulldozer_testbed, "phenom": phenom_testbed}
    platform = testbed[scenario["chip"]]()
    if slowdown != 1.0:
        platform = MeasurementPlatform(
            backend=SlowdownBackend(platform.backend, slowdown))
    collector = TelemetryCollector()
    config = AuditConfig(
        threads=scenario["threads"],
        ga=GaConfig(
            population_size=scenario["population"],
            generations=scenario["generations"],
            seed=scenario["seed"],
            stagnation_patience=max(6, scenario["generations"]),
        ),
    )
    runner = AuditRunner(platform, config=config, observers=[collector])
    result = runner.run()
    qualifier = StressmarkQualifier(
        platform,
        threads=scenario["threads"],
        config=QualifyConfig(seed=scenario["seed"]),
    )
    report = qualifier.qualify_program(result.program(), name=result.name)
    batched = _batched_pdn_benchmark(scenario)
    fleet = _fleet_benchmark(scenario)
    obs = _obs_benchmark(scenario)
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario,
        "metrics": {
            "max_droop_v": result.max_droop_v,
            "best_fitness": result.ga_result.best_fitness,
            "evaluations": result.ga_result.evaluations,
            "resonance_hz": result.resonance.resonance_hz,
            "evals_per_second": collector.evals_per_second,
            "eval_wall_s": collector.eval_wall_s,
            "cache_hit_rate": collector.cache_hit_rate,
            "qualify_verdict": report.verdict,
            "qualify_robustness": report.robustness,
            "qualify_evaluations": report.evaluations,
            "qualify_evals_per_second": (
                report.evaluations / report.wall_s if report.wall_s else 0.0),
            "batched_pdn_speedup": batched["batched_pdn_speedup"],
            "batched_droop_match": batched["batched_droop_match"],
            "batched_rows": batched["batched_rows"],
            "fleet_shard_throughput_ratio": (
                fleet["fleet_shard_throughput_ratio"]),
            "fleet_droop_match": fleet["fleet_droop_match"],
            "fleet_shards": fleet["fleet_shards"],
            "registry_publish_overhead": fleet["registry_publish_overhead"],
            "registry_records": fleet["registry_records"],
            "registry_verify_match": fleet["registry_verify_match"],
            "obs_overhead": obs["obs_overhead"],
            "obs_droop_match": obs["obs_droop_match"],
            "obs_spans": obs["obs_spans"],
        },
    }


def compare(baseline: dict, current: dict, tolerance: float = 0.15) -> list[str]:
    """Return the list of regressions (empty = gate passes)."""
    problems = []
    if baseline.get("schema_version") != current.get("schema_version"):
        problems.append(
            f"schema version changed: baseline "
            f"{baseline.get('schema_version')} vs current "
            f"{current.get('schema_version')}; re-baseline with --update"
        )
        return problems
    if baseline.get("scenario") != current.get("scenario"):
        problems.append(
            f"bench scenario changed: baseline {baseline.get('scenario')} "
            f"vs current {current.get('scenario')}; re-baseline with --update"
        )
        return problems
    base, cur = baseline["metrics"], current["metrics"]
    for name in EXACT_METRICS:
        if base[name] != cur[name]:
            problems.append(
                f"{name} changed: baseline {base[name]!r} -> {cur[name]!r} "
                "(simulation outputs are deterministic; any drift is a "
                "behaviour change)"
            )
    for name in THROUGHPUT_METRICS:
        floor = base[name] * (1.0 - tolerance)
        if cur[name] < floor:
            drop = 1.0 - cur[name] / base[name]
            problems.append(
                f"{name} regressed {drop * 100:.1f} %: "
                f"{base[name]:.1f} -> {cur[name]:.1f} evals/s "
                f"(tolerance {tolerance * 100:.0f} %)"
            )
    for name, floor in FLOOR_METRICS.items():
        if cur[name] < floor:
            problems.append(
                f"{name} below floor: {cur[name]:.2f} < {floor:.2f} "
                "(the batched PDN path must beat serial solves by at "
                "least this factor)"
            )
    for name, ceiling in CEILING_METRICS.items():
        if cur[name] > ceiling:
            problems.append(
                f"{name} above ceiling: {cur[name]:.4f} > {ceiling:.4f} "
                "(this overhead must stay a negligible fraction of the "
                "work it instruments)"
            )
    return problems


def summary_markdown(current: dict, problems: list[str]) -> str:
    """The gate outcome as GitHub markdown (for ``$GITHUB_STEP_SUMMARY``)."""
    metrics = current["metrics"]
    status = "✅ passed" if not problems else f"❌ failed ({len(problems)})"
    lines = [
        "## Benchmark regression gate",
        "",
        f"Status: {status}",
        "",
        "| metric | value |",
        "|---|---|",
    ]
    for name in sorted(metrics):
        value = metrics[name]
        rendered = f"{value:.4g}" if isinstance(value, float) else str(value)
        lines.append(f"| {name} | {rendered} |")
    for problem in problems:
        lines.append(f"- ❌ {problem}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark-regression gate for the AUDIT evaluation path")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON to gate against")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the fresh metrics JSON here "
                             "(the CI artifact)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with fresh metrics "
                             "instead of gating")
    parser.add_argument("--slowdown", type=float, default=1.0,
                        help="stretch every measurement by this factor "
                             "(gate self-test; 2.0 must fail)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional evals/sec drop "
                             "(default 0.15)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="append a markdown summary of the metrics and "
                             "gate outcome to this file (CI step summary)")
    args = parser.parse_args(argv)
    if args.slowdown < 1.0:
        parser.error("--slowdown must be >= 1.0")

    current = collect_metrics(slowdown=args.slowdown)
    metrics = current["metrics"]
    print(f"bench campaign: {metrics['evaluations']} evaluations, "
          f"{metrics['evals_per_second']:.1f} evals/s, "
          f"max droop {metrics['max_droop_v'] * 1e3:.2f} mV")
    print(f"qualification: {metrics['qualify_verdict']} "
          f"(robustness {metrics['qualify_robustness']:.2f}, "
          f"{metrics['qualify_evaluations']} evaluations, "
          f"{metrics['qualify_evals_per_second']:.1f} evals/s)")
    print(f"batched PDN: {metrics['batched_pdn_speedup']:.2f}x serial over "
          f"{metrics['batched_rows']} rows, droop match: "
          f"{metrics['batched_droop_match']}")
    print(f"fleet: {metrics['fleet_shards']} shards at "
          f"{metrics['fleet_shard_throughput_ratio']:.2f}x standalone "
          f"throughput, droop match: {metrics['fleet_droop_match']}")
    print(f"registry: {metrics['registry_records']} records published at "
          f"{metrics['registry_publish_overhead'] * 100:.2f}% of campaign "
          f"wall, verify match: {metrics['registry_verify_match']}")
    print(f"observability: {metrics['obs_overhead'] * 100:.2f}% tracing "
          f"overhead over {metrics['obs_spans']} spans, droop match: "
          f"{metrics['obs_droop_match']}")

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(current, indent=2) + "\n")
        print(f"metrics written to {args.out}")

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        _write_summary(args.summary, current, [])
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; create one with "
              "--update", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    problems = compare(baseline, current, tolerance=args.tolerance)
    _write_summary(args.summary, current, problems)
    if problems:
        print(f"\nREGRESSION GATE FAILED ({len(problems)}):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0


def _write_summary(path: Path | None, current: dict,
                   problems: list[str]) -> None:
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(summary_markdown(current, problems))


if __name__ == "__main__":
    raise SystemExit(main())
