"""Bench AUDIT: the full closed-loop generation run (the paper's core claim).

Runs the real GA against the Bulldozer testbed for both stressmark modes
and checks the headline: automatically generated stressmarks match or beat
the hand-tuned ones that took "on the order of a week per stressmark from a
highly skilled engineer".
"""

from repro.core.audit import AuditConfig, AuditRunner, StressmarkMode
from repro.core.ga import GaConfig
from repro.core.telemetry import TelemetryCollector
from repro.experiments.setup import bulldozer_testbed
from repro.isa.encoder import encode_kernel_listing
from repro.isa.opcodes import default_table
from repro.workloads.stressmarks import sm_res, stressmark_program


def test_audit_generates_resonant_stressmark(benchmark, save_report):
    platform = bulldozer_testbed()
    config = AuditConfig(
        threads=4,
        mode=StressmarkMode.RESONANT,
        ga=GaConfig(population_size=16, generations=12, seed=1,
                    stagnation_patience=10),
    )
    collector = TelemetryCollector()
    runner = AuditRunner(platform, config=config, observers=[collector])
    result = benchmark.pedantic(runner.run, rounds=1, iterations=1)

    hand_tuned = platform.measure_program(
        stressmark_program(sm_res(default_table())), 4
    ).max_droop_v

    lines = [
        f"AUDIT resonance sweep: {result.resonance.resonance_hz / 1e6:.1f} MHz "
        f"(period {result.resonance.best_period_cycles} cycles)",
        f"GA evaluations: {result.ga_result.evaluations} "
        f"(stopped early: {result.ga_result.stopped_early})",
        f"A-Res droop: {result.max_droop_v * 1e3:.1f} mV",
        f"hand-tuned SM-Res droop: {hand_tuned * 1e3:.1f} mV",
        f"A-Res / SM-Res: {result.max_droop_v / hand_tuned:.2f}",
        "",
        "winning kernel:",
        encode_kernel_listing(result.kernel),
        "",
        collector.summary_table(platform.stats()),
    ]
    save_report("audit_generation", "\n".join(lines))

    # AUDIT finds the PDN resonance automatically...
    assert result.resonance.resonance_hz == __import__("pytest").approx(
        100e6, rel=0.15
    )
    # ...and matches or beats the week-of-expert-effort stressmark.
    assert result.max_droop_v >= 0.95 * hand_tuned
